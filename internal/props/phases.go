package props

import (
	"time"

	"repro/internal/check"
	"repro/internal/sim"
	"repro/internal/types"
)

// PhaseMeasure decomposes a stabilized execution the way the Theorem 7.1
// argument does (Figure 12): after the hypothesis starts holding at l,
// the VS layer stabilizes within l′ ≤ b; the state-exchange phase — until
// every member's summary is safe at every member — takes at most a further
// d; and client deliveries thereafter complete within d of submission.
type PhaseMeasure struct {
	VS VSMeasure
	// ExchangePhase runs from the last newview in Q to the last safe event
	// for any member's state-exchange summary at any member (zero when the
	// final view required no exchange visible in the log).
	ExchangePhase time.Duration
	// PostLag is the worst delivery lag measured against the end of the
	// exchange phase (clause 2 of VStoTO-property).
	PostLag    time.Duration
	Incomplete int
}

// MeasurePhases computes the Figure 12 decomposition for component Q
// isolated from time l. Each member's state-exchange summary is identified
// as its first gpsnd after installing the final view.
func MeasurePhases(log *Log, q types.ProcSet, l sim.Time) PhaseMeasure {
	m := PhaseMeasure{VS: MeasureVS(log, q, l)}
	if !m.VS.Converged {
		return m
	}
	stab := l.Add(m.VS.LPrime)

	summarySent := make(map[types.ProcID]bool)
	exchIDs := make(map[check.MsgID]bool)
	inFinal := make(map[types.ProcID]bool)
	for p, v := range log.Initial {
		if q.Contains(p) && v.ID == m.VS.FinalView.ID {
			inFinal[p] = true
		}
	}
	var exchEnd sim.Time
	for _, e := range log.Events {
		switch e.Kind {
		case VSNewview:
			if q.Contains(e.P) {
				inFinal[e.P] = e.View.ID == m.VS.FinalView.ID
			}
		case VSGpsnd:
			if q.Contains(e.P) && inFinal[e.P] && !summarySent[e.P] {
				summarySent[e.P] = true
				exchIDs[e.Msg] = true
			}
		case VSSafe:
			if q.Contains(e.P) && exchIDs[e.Msg] && e.T > exchEnd {
				exchEnd = e.T
			}
		}
	}
	if exchEnd > stab {
		m.ExchangePhase = exchEnd.Sub(stab)
	}
	to := MeasureTO(log, q, l, m.VS.LPrime+m.ExchangePhase)
	m.PostLag = to.MaxSendLag
	if to.MaxRelayLag > m.PostLag {
		m.PostLag = to.MaxRelayLag
	}
	m.Incomplete = to.Incomplete
	return m
}
