package props

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// RecoveryMeasure is the outcome of evaluating recovery liveness over a
// recorded execution: after the final heal at healT the component q is
// consistently good, so every value ever submitted at a member of q must
// reach every member of q within the analytic stabilization + delivery
// budget.
type RecoveryMeasure struct {
	// Values counts the submissions entering the measurement (bcasts at
	// members of q).
	Values int
	// Missing counts ⟨value, member⟩ pairs with no delivery by the end of
	// the log.
	Missing int
	// MaxLag is the worst observed delivery lag: time of brcv minus
	// max(time of bcast, healT), over all measured pairs.
	MaxLag time.Duration
	// FirstViolation describes the first missing or late delivery (empty
	// when the property holds).
	FirstViolation string
}

// CheckRecoveryLiveness evaluates the recovery-liveness predicate: given
// that from healT onward every member and channel of q is good (the
// heal-the-world hypothesis — the caller asserts it, typically by forcing
// Oracle.Heal at healT and injecting no further faults), every value bcast
// at a member of q — whenever it was submitted, including during earlier
// partitions or at a then-crashed processor — must be brcv'd at every
// member of q no later than max(bcastT, healT) + bound.
//
// This is the conditional TO-property clause (Figure 5, clause 2(b))
// instantiated with Q = the healed component and the whole preceding fault
// history folded into the hypothesis interval; bound plays the role of
// l′ + d. A run that blackholes traffic forever, or a membership layer that
// never reconverges after the heal, fails this check even though pure
// safety conformance passes vacuously.
func CheckRecoveryLiveness(log *Log, q types.ProcSet, healT sim.Time, bound time.Duration) error {
	m := MeasureRecovery(log, q, healT, bound)
	if m.FirstViolation != "" {
		return fmt.Errorf("props: recovery liveness: %s", m.FirstViolation)
	}
	return nil
}

// MeasureRecovery computes the recovery-liveness measurement; see
// CheckRecoveryLiveness for the predicate. FirstViolation is set as soon
// as a value misses its deadline, but the scan continues so Missing and
// MaxLag describe the whole run.
func MeasureRecovery(log *Log, q types.ProcSet, healT sim.Time, bound time.Duration) RecoveryMeasure {
	var m RecoveryMeasure

	type key struct {
		Origin types.ProcID
		Seq    int
	}
	bcastT := make(map[key]sim.Time)
	value := make(map[key]types.Value)
	type at struct {
		key
		P types.ProcID
	}
	brcvT := make(map[at]sim.Time)
	for _, e := range log.Events {
		switch e.Kind {
		case TOBcast:
			if q.Contains(e.P) {
				k := key{e.P, e.ValueSeq}
				bcastT[k] = e.T
				value[k] = e.Value
			}
		case TOBrcv:
			if q.Contains(e.P) {
				k := at{key{e.From, e.ValueSeq}, e.P}
				if _, dup := brcvT[k]; !dup { // first delivery decides the lag
					brcvT[k] = e.T
				}
			}
		}
	}
	m.Values = len(bcastT)
	violate := func(s string) {
		if m.FirstViolation == "" {
			m.FirstViolation = s
		}
	}
	// Scan in (bcast time, origin, seq) order: map iteration would make
	// FirstViolation — and with it shrink traces and replay artifacts —
	// nondeterministic across identical runs.
	keys := make([]key, 0, len(bcastT))
	for k := range bcastT {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if bcastT[a] != bcastT[b] {
			return bcastT[a] < bcastT[b]
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	for _, k := range keys {
		t0 := bcastT[k]
		deadline := healT
		if t0 > deadline {
			deadline = t0
		}
		deadline = deadline.Add(bound)
		for _, p := range q.Members() {
			dt, ok := brcvT[at{k, p}]
			if !ok {
				m.Missing++
				violate(fmt.Sprintf("%q (#%d from %v, bcast %v) never delivered at %v (deadline %v)",
					string(value[k]), k.Seq, k.Origin, t0, p, deadline))
				continue
			}
			lag := dt.Sub(maxTime(t0, healT))
			if lag > m.MaxLag {
				m.MaxLag = lag
			}
			if dt > deadline {
				violate(fmt.Sprintf("%q (#%d from %v, bcast %v) delivered at %v only at %v, %v past the %v deadline",
					string(value[k]), k.Seq, k.Origin, t0, p, dt, dt.Sub(deadline), deadline))
			}
		}
	}
	return m
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
