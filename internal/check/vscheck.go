package check

import (
	"fmt"

	"repro/internal/types"
)

// MsgID uniquely identifies one gpsnd occurrence. Harnesses assign them at
// send time (the paper's Lemma 4.2 constructs exactly such identifiers to
// define the cause function).
type MsgID struct {
	Sender types.ProcID
	Seq    int // per-sender send counter, 1-based
}

// String renders the identifier.
func (m MsgID) String() string { return fmt.Sprintf("m%v.%d", m.Sender, m.Seq) }

// VSChecker incrementally verifies that a stream of newview/gpsnd/gprcv/
// safe events is a trace of VS-machine (Figure 6), i.e. that all the
// Lemma 4.2 properties and the view rules hold:
//
//   - local monotonicity: newview identifiers strictly increase per
//     processor, and a processor is always a member of its new view;
//   - sending-view delivery: every gprcv/safe occurs at a receiver whose
//     current view equals the sender's view at the corresponding gpsnd
//     (message integrity); sends in view ⊥ are never delivered;
//   - no duplication: cause is one-to-one per receiver for gprcv, and
//     separately for safe;
//   - per-view prefix total order: within each view there is one total
//     order of messages, and every receiver's gprcv sequence is a prefix of
//     it (this subsumes no-reordering and the per-sender prefix property);
//   - safe ordering: each receiver's safe sequence is a prefix of its gprcv
//     sequence in that view, and a safe(m) event may occur only once every
//     member of the view has received m.
type VSChecker struct {
	universe types.ProcSet

	current map[types.ProcID]types.View
	hasView map[types.ProcID]bool // false = still ⊥

	sendView map[MsgID]types.ViewID // view in which the message was sent (⊥ recorded too)
	sendSeq  map[types.ProcID]int   // sends observed per sender (id sanity)
	// viewSends lists each sender's send sequence numbers per view, in send
	// order: the per-sender prefix check scans a sender's actual sends
	// instead of the numeric gap between identifiers, which keeps it cheap
	// even when sequence numbers jump (the stack partitions the sequence
	// space by incarnation, so gaps of 2³² are routine).
	viewSends map[viewProc][]int

	// Per view: the constructed total order and each receiver's delivered
	// and safe prefix lengths.
	order     map[types.ViewID][]MsgID
	deliv     map[viewProc]int
	safe      map[viewProc]int
	delivered map[viewMsg]map[types.ProcID]bool

	events int
}

type viewProc struct {
	G types.ViewID
	P types.ProcID
}

type viewMsg struct {
	G types.ViewID
	M MsgID
}

// NewVSChecker creates a checker. Processors in p0 start in the initial
// view ⟨g0, P0⟩; the rest start with ⊥.
func NewVSChecker(universe, p0 types.ProcSet) *VSChecker {
	c := &VSChecker{
		universe:  universe,
		current:   make(map[types.ProcID]types.View),
		hasView:   make(map[types.ProcID]bool),
		sendView:  make(map[MsgID]types.ViewID),
		sendSeq:   make(map[types.ProcID]int),
		viewSends: make(map[viewProc][]int),
		order:     make(map[types.ViewID][]MsgID),
		deliv:     make(map[viewProc]int),
		safe:      make(map[viewProc]int),
		delivered: make(map[viewMsg]map[types.ProcID]bool),
	}
	v0 := types.InitialView(p0)
	for _, p := range p0.Members() {
		c.current[p] = v0
		c.hasView[p] = true
	}
	return c
}

// Newview checks a newview(v)_p event.
func (c *VSChecker) Newview(v types.View, p types.ProcID) error {
	c.events++
	if !v.Set.Contains(p) {
		return fmt.Errorf("check: event %d: newview(%v)_%v: self-inclusion violated", c.events, v, p)
	}
	if c.hasView[p] && !c.current[p].ID.Less(v.ID) {
		return fmt.Errorf("check: event %d: newview(%v)_%v: local monotonicity violated (current %v)",
			c.events, v, p, c.current[p].ID)
	}
	c.current[p] = v
	c.hasView[p] = true
	return nil
}

// Gpsnd checks a gpsnd event with identifier id at sender id.Sender.
func (c *VSChecker) Gpsnd(id MsgID) error {
	c.events++
	if _, dup := c.sendView[id]; dup {
		return fmt.Errorf("check: event %d: duplicate gpsnd id %v", c.events, id)
	}
	c.sendSeq[id.Sender]++
	if c.hasView[id.Sender] {
		g := c.current[id.Sender].ID
		c.sendView[id] = g
		vp := viewProc{G: g, P: id.Sender}
		c.viewSends[vp] = append(c.viewSends[vp], id.Seq)
	} else {
		c.sendView[id] = types.Bottom // must never be delivered
	}
	return nil
}

// Gprcv checks a gprcv event: message id delivered at q.
func (c *VSChecker) Gprcv(id MsgID, q types.ProcID) error {
	c.events++
	g, sent := c.sendView[id]
	if !sent {
		return fmt.Errorf("check: event %d: gprcv(%v)_%v: no corresponding gpsnd (integrity)", c.events, id, q)
	}
	if g.IsBottom() {
		return fmt.Errorf("check: event %d: gprcv(%v)_%v: message was sent while sender's view was ⊥", c.events, id, q)
	}
	if !c.hasView[q] || c.current[q].ID != g {
		return fmt.Errorf("check: event %d: gprcv(%v)_%v: receiver view %v ≠ sending view %v (sending-view delivery)",
			c.events, id, q, c.currentID(q), g)
	}
	vp := viewProc{G: g, P: q}
	n := c.deliv[vp]
	ord := c.order[g]
	if n < len(ord) {
		if ord[n] != id {
			return fmt.Errorf("check: event %d: gprcv(%v)_%v: position %d of view %v's order is %v (prefix total order)",
				c.events, id, q, n+1, g, ord[n])
		}
	} else {
		// q extends the view's order; the same message may not be ordered
		// twice, and per-sender sends must enter in send order.
		for _, prev := range ord {
			if prev == id {
				return fmt.Errorf("check: event %d: gprcv(%v)_%v: message ordered twice in view %v (no duplication)",
					c.events, id, q, g)
			}
		}
		if err := c.checkSenderPrefix(g, ord, id); err != nil {
			return fmt.Errorf("check: event %d: gprcv(%v)_%v: %w", c.events, id, q, err)
		}
		c.order[g] = append(ord, id)
	}
	c.deliv[vp] = n + 1
	vm := viewMsg{G: g, M: id}
	if c.delivered[vm] == nil {
		c.delivered[vm] = make(map[types.ProcID]bool)
	}
	if c.delivered[vm][q] {
		return fmt.Errorf("check: event %d: gprcv(%v)_%v: duplicate delivery (no duplication)", c.events, id, q)
	}
	c.delivered[vm][q] = true
	return nil
}

// checkSenderPrefix enforces the per-sender no-losses property: within a
// view, the ordered messages of a sender form a prefix of its send
// sequence, so a new entry must be the sender's next unordered send.
func (c *VSChecker) checkSenderPrefix(g types.ViewID, ord []MsgID, id MsgID) error {
	maxSeq := 0
	for _, prev := range ord {
		if prev.Sender == id.Sender && prev.Seq > maxSeq {
			maxSeq = prev.Seq
		}
	}
	// Per-sender sends are monotone, so the list is increasing and the
	// first hit is the smallest skipped identifier.
	for _, seq := range c.viewSends[viewProc{G: g, P: id.Sender}] {
		if seq > maxSeq && seq < id.Seq {
			skipped := MsgID{Sender: id.Sender, Seq: seq}
			return fmt.Errorf("message skips %v sent earlier in the same view (per-sender prefix)", skipped)
		}
	}
	return nil
}

// Safe checks a safe event for message id at q.
func (c *VSChecker) Safe(id MsgID, q types.ProcID) error {
	c.events++
	g, sent := c.sendView[id]
	if !sent || g.IsBottom() {
		return fmt.Errorf("check: event %d: safe(%v)_%v: no deliverable gpsnd (integrity)", c.events, id, q)
	}
	if !c.hasView[q] || c.current[q].ID != g {
		return fmt.Errorf("check: event %d: safe(%v)_%v: receiver view %v ≠ sending view %v", c.events, id, q, c.currentID(q), g)
	}
	vp := viewProc{G: g, P: q}
	ns := c.safe[vp]
	ord := c.order[g]
	if ns >= len(ord) || ord[ns] != id {
		return fmt.Errorf("check: event %d: safe(%v)_%v: safe events must follow view %v's order (next-safe %d)",
			c.events, id, q, g, ns+1)
	}
	if ns >= c.deliv[vp] {
		return fmt.Errorf("check: event %d: safe(%v)_%v: safe overtakes delivery (next-safe %d, delivered %d)",
			c.events, id, q, ns+1, c.deliv[vp])
	}
	// Every member of q's current view must already have received id.
	got := c.delivered[viewMsg{G: g, M: id}]
	for _, r := range c.current[q].Set.Members() {
		if !got[r] {
			return fmt.Errorf("check: event %d: safe(%v)_%v: member %v has not received the message", c.events, id, q, r)
		}
	}
	c.safe[vp] = ns + 1
	return nil
}

func (c *VSChecker) currentID(p types.ProcID) types.ViewID {
	if !c.hasView[p] {
		return types.Bottom
	}
	return c.current[p].ID
}

// CurrentView returns p's current view as tracked from the event stream.
func (c *VSChecker) CurrentView(p types.ProcID) (types.View, bool) {
	return c.current[p], c.hasView[p]
}

// ViewOrder returns the constructed total order of view g.
func (c *VSChecker) ViewOrder(g types.ViewID) []MsgID { return c.order[g] }

// Events returns the number of events checked.
func (c *VSChecker) Events() int { return c.events }
