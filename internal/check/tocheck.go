// Package check provides online trace checkers: given the external events
// of a run (of the spec automata, of the VStoTO composition, or of the real
// timed implementation), they decide membership in the trace sets of
// TO-machine and VS-machine. They are the test oracles for conformance
// testing and the engine behind the vscheck command.
package check

import (
	"fmt"

	"repro/internal/types"
)

// TOChecker incrementally verifies that a stream of bcast/brcv events is a
// trace of TO-machine (Figure 3). The witness construction: deliveries
// from a given origin must occur in that origin's submission order (because
// to-order consumes pending[p] FIFO), every processor's delivery sequence
// must be a prefix of a single global order, and that global order may only
// order a value after all earlier values from the same origin.
type TOChecker struct {
	// sent[p] counts bcasts at p; delivered maps (origin, k) — the k-th
	// bcast at origin — to its position in the global order.
	sent      map[types.ProcID]int
	values    map[msgKey]types.Value
	order     []msgKey
	posOf     map[msgKey]int
	nextOrd   map[types.ProcID]int // next submission index of p eligible for ordering
	delivered map[types.ProcID]int // length of q's delivered prefix of order
	events    int
}

type msgKey struct {
	Origin types.ProcID
	Index  int // 1-based submission index at Origin
}

// NewTOChecker creates an empty checker.
func NewTOChecker() *TOChecker {
	return &TOChecker{
		sent:      make(map[types.ProcID]int),
		values:    make(map[msgKey]types.Value),
		posOf:     make(map[msgKey]int),
		nextOrd:   make(map[types.ProcID]int),
		delivered: make(map[types.ProcID]int),
	}
}

// Bcast records a submission of a at p.
func (c *TOChecker) Bcast(a types.Value, p types.ProcID) {
	c.events++
	c.sent[p]++
	c.values[msgKey{Origin: p, Index: c.sent[p]}] = a
}

// Brcv checks a delivery at q of value a originating at p. It returns an
// error if no TO-machine execution can explain the delivery.
func (c *TOChecker) Brcv(a types.Value, p, q types.ProcID) error {
	c.events++
	n := c.delivered[q]
	if n < len(c.order) {
		// q must deliver the global order in sequence.
		k := c.order[n]
		if k.Origin != p || c.values[k] != a {
			return fmt.Errorf("check: event %d: brcv(%q)_{%v,%v} but position %d of the total order is %q from %v",
				c.events, string(a), p, q, n+1, string(c.values[k]), k.Origin)
		}
		c.delivered[q] = n + 1
		return nil
	}
	// q extends the global order: the next value must be the next
	// not-yet-ordered submission of p (per-sender FIFO), with matching
	// value.
	idx := c.nextOrd[p] + 1
	k := msgKey{Origin: p, Index: idx}
	v, ok := c.values[k]
	if !ok {
		return fmt.Errorf("check: event %d: brcv(%q)_{%v,%v} but %v has no unordered submission (integrity violation)",
			c.events, string(a), p, q, p)
	}
	if v != a {
		return fmt.Errorf("check: event %d: brcv(%q)_{%v,%v} but %v's next unordered submission (#%d) is %q (per-sender order violation)",
			c.events, string(a), p, q, p, idx, string(v))
	}
	c.nextOrd[p] = idx
	c.posOf[k] = len(c.order)
	c.order = append(c.order, k)
	c.delivered[q] = n + 1
	return nil
}

// Order returns the global order constructed so far as ⟨value, origin⟩
// pairs.
func (c *TOChecker) Order() []struct {
	A types.Value
	P types.ProcID
} {
	out := make([]struct {
		A types.Value
		P types.ProcID
	}, len(c.order))
	for i, k := range c.order {
		out[i].A = c.values[k]
		out[i].P = k.Origin
	}
	return out
}

// DeliveredCount returns the length of q's delivered prefix.
func (c *TOChecker) DeliveredCount(q types.ProcID) int { return c.delivered[q] }

// OrderLen returns the length of the constructed global order.
func (c *TOChecker) OrderLen() int { return len(c.order) }

// Events returns the number of events checked.
func (c *TOChecker) Events() int { return c.events }
