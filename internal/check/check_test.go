package check

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// --- TOChecker -----------------------------------------------------------

func TestTOCheckerAcceptsCommonOrder(t *testing.T) {
	c := NewTOChecker()
	c.Bcast("a", 0)
	c.Bcast("b", 1)
	// p2 extends the order; p0 follows the same prefix.
	mustOK(t, c.Brcv("a", 0, 2))
	mustOK(t, c.Brcv("b", 1, 2))
	mustOK(t, c.Brcv("a", 0, 0))
	mustOK(t, c.Brcv("b", 1, 0))
	if c.OrderLen() != 2 {
		t.Fatalf("order length %d", c.OrderLen())
	}
	if c.DeliveredCount(0) != 2 || c.DeliveredCount(2) != 2 || c.DeliveredCount(1) != 0 {
		t.Error("delivered counts wrong")
	}
	ord := c.Order()
	if ord[0].A != "a" || ord[0].P != 0 || ord[1].A != "b" {
		t.Fatalf("Order() = %v", ord)
	}
}

func TestTOCheckerRejectsPrefixViolation(t *testing.T) {
	c := NewTOChecker()
	c.Bcast("a", 0)
	c.Bcast("b", 1)
	mustOK(t, c.Brcv("a", 0, 2))
	if err := c.Brcv("b", 1, 3); err == nil {
		t.Fatal("divergent first delivery accepted")
	}
}

func TestTOCheckerRejectsUnsentValue(t *testing.T) {
	c := NewTOChecker()
	if err := c.Brcv("ghost", 0, 1); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("unsent value accepted or wrong error: %v", err)
	}
}

func TestTOCheckerRejectsPerSenderReorder(t *testing.T) {
	c := NewTOChecker()
	c.Bcast("first", 0)
	c.Bcast("second", 0)
	if err := c.Brcv("second", 0, 1); err == nil {
		t.Fatal("out-of-submission-order delivery accepted")
	}
}

func TestTOCheckerDuplicateValuesDistinguished(t *testing.T) {
	c := NewTOChecker()
	c.Bcast("same", 0)
	c.Bcast("same", 0)
	mustOK(t, c.Brcv("same", 0, 1))
	mustOK(t, c.Brcv("same", 0, 1))
	// A third delivery of "same" has no matching submission.
	if err := c.Brcv("same", 0, 1); err == nil {
		t.Fatal("over-delivery of duplicate value accepted")
	}
}

func TestTOCheckerInterleavedSenders(t *testing.T) {
	c := NewTOChecker()
	for i := 0; i < 5; i++ {
		c.Bcast(types.Value("x"), 0)
		c.Bcast(types.Value("y"), 1)
	}
	// Any interleaving that respects per-sender order is fine.
	seq := []types.ProcID{0, 1, 1, 0, 0, 1, 0, 1, 1, 0}
	vals := map[types.ProcID]types.Value{0: "x", 1: "y"}
	for _, p := range seq {
		mustOK(t, c.Brcv(vals[p], p, 2))
	}
	if c.Events() != 20 {
		t.Errorf("Events = %d", c.Events())
	}
}

// --- VSChecker -----------------------------------------------------------

func view(epoch int64, proc types.ProcID, members ...types.ProcID) types.View {
	return types.View{ID: types.ViewID{Epoch: epoch, Proc: proc}, Set: types.NewProcSet(members...)}
}

func TestVSCheckerHappyPath(t *testing.T) {
	all := types.RangeProcSet(3)
	c := NewVSChecker(all, all)
	m1 := MsgID{Sender: 0, Seq: 1}
	mustOK(t, c.Gpsnd(m1))
	for _, q := range all.Members() {
		mustOK(t, c.Gprcv(m1, q))
	}
	for _, q := range all.Members() {
		mustOK(t, c.Safe(m1, q))
	}
	if got := c.ViewOrder(types.G0()); len(got) != 1 || got[0] != m1 {
		t.Fatalf("ViewOrder = %v", got)
	}
}

func TestVSCheckerNewviewRules(t *testing.T) {
	all := types.RangeProcSet(3)
	c := NewVSChecker(all, all)
	v2 := view(2, 0, 0, 1)
	if err := c.Newview(v2, 2); err == nil {
		t.Fatal("self-inclusion violation accepted")
	}
	mustOK(t, c.Newview(v2, 0))
	if err := c.Newview(view(1, 0, 0, 1), 0); err == nil {
		t.Fatal("non-monotone newview accepted")
	}
	cv, ok := c.CurrentView(0)
	if !ok || cv.ID != v2.ID {
		t.Errorf("CurrentView = %v %t", cv, ok)
	}
}

func TestVSCheckerSendingViewDelivery(t *testing.T) {
	all := types.RangeProcSet(2)
	c := NewVSChecker(all, all)
	m1 := MsgID{Sender: 0, Seq: 1}
	mustOK(t, c.Gpsnd(m1))
	// p1 moves to a new view before receiving.
	mustOK(t, c.Newview(view(2, 1, 0, 1), 1))
	if err := c.Gprcv(m1, 1); err == nil {
		t.Fatal("delivery outside the sending view accepted")
	}
	// p0, still in g0, may receive it.
	mustOK(t, c.Gprcv(m1, 0))
}

func TestVSCheckerBottomSendNeverDelivered(t *testing.T) {
	c := NewVSChecker(types.RangeProcSet(2), types.NewProcSet(0)) // p1 starts with ⊥
	m := MsgID{Sender: 1, Seq: 1}
	mustOK(t, c.Gpsnd(m))
	if err := c.Gprcv(m, 0); err == nil {
		t.Fatal("⊥-view send delivered")
	}
}

func TestVSCheckerNoDuplication(t *testing.T) {
	all := types.RangeProcSet(2)
	c := NewVSChecker(all, all)
	m := MsgID{Sender: 0, Seq: 1}
	mustOK(t, c.Gpsnd(m))
	mustOK(t, c.Gprcv(m, 1))
	if err := c.Gprcv(m, 1); err == nil {
		t.Fatal("duplicate delivery accepted")
	}
	if err := c.Gpsnd(m); err == nil {
		t.Fatal("duplicate gpsnd id accepted")
	}
}

func TestVSCheckerPrefixTotalOrder(t *testing.T) {
	all := types.RangeProcSet(3)
	c := NewVSChecker(all, all)
	a := MsgID{Sender: 0, Seq: 1}
	b := MsgID{Sender: 1, Seq: 1}
	mustOK(t, c.Gpsnd(a))
	mustOK(t, c.Gpsnd(b))
	// p2 establishes the order a, b.
	mustOK(t, c.Gprcv(a, 2))
	mustOK(t, c.Gprcv(b, 2))
	// p0 must follow it.
	if err := c.Gprcv(b, 0); err == nil {
		t.Fatal("per-view order divergence accepted")
	}
	mustOK(t, c.Gprcv(a, 0))
	mustOK(t, c.Gprcv(b, 0))
}

func TestVSCheckerPerSenderPrefixWithinView(t *testing.T) {
	all := types.RangeProcSet(2)
	c := NewVSChecker(all, all)
	m1 := MsgID{Sender: 0, Seq: 1}
	m2 := MsgID{Sender: 0, Seq: 2}
	mustOK(t, c.Gpsnd(m1))
	mustOK(t, c.Gpsnd(m2))
	if err := c.Gprcv(m2, 1); err == nil {
		t.Fatal("skipping an earlier same-view send accepted")
	}
}

func TestVSCheckerSafeSemantics(t *testing.T) {
	all := types.RangeProcSet(2)
	c := NewVSChecker(all, all)
	m := MsgID{Sender: 0, Seq: 1}
	mustOK(t, c.Gpsnd(m))
	mustOK(t, c.Gprcv(m, 0))
	// Not all members have received: safe must be rejected.
	if err := c.Safe(m, 0); err == nil {
		t.Fatal("premature safe accepted")
	}
	mustOK(t, c.Gprcv(m, 1))
	mustOK(t, c.Safe(m, 0))
	// Safe may not overtake the receiver's own deliveries: p1 delivered m,
	// so safe is fine there too.
	mustOK(t, c.Safe(m, 1))
	// Double safe for the same message at the same receiver is rejected
	// (next-safe points past it).
	if err := c.Safe(m, 1); err == nil {
		t.Fatal("duplicate safe accepted")
	}
}

func TestVSCheckerIntegrity(t *testing.T) {
	all := types.RangeProcSet(2)
	c := NewVSChecker(all, all)
	if err := c.Gprcv(MsgID{Sender: 0, Seq: 9}, 1); err == nil {
		t.Fatal("unsent message delivered")
	}
	if err := c.Safe(MsgID{Sender: 0, Seq: 9}, 1); err == nil {
		t.Fatal("unsent message safe")
	}
}

// Messages sent in different views by the same sender may skip: the
// per-sender prefix property is per view.
func TestVSCheckerCrossViewSkipAllowed(t *testing.T) {
	all := types.RangeProcSet(2)
	c := NewVSChecker(all, all)
	m1 := MsgID{Sender: 0, Seq: 1} // sent in g0, never delivered
	mustOK(t, c.Gpsnd(m1))
	v2 := view(2, 0, 0, 1)
	mustOK(t, c.Newview(v2, 0))
	mustOK(t, c.Newview(v2, 1))
	m2 := MsgID{Sender: 0, Seq: 2} // sent in v2
	mustOK(t, c.Gpsnd(m2))
	// Delivering m2 in v2 is fine even though m1 (older, same sender) was
	// never delivered: m1 belongs to g0.
	mustOK(t, c.Gprcv(m2, 1))
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
