package check

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// TestTOCheckerAcceptsGeneratedValidTraces generates random TO-machine
// executions directly from the abstract semantics (pending queues, one
// global order, per-processor prefix delivery) and verifies the checker
// accepts every trace it can produce. Soundness's complement: the checker
// may not reject legal behavior.
func TestTOCheckerAcceptsGeneratedValidTraces(t *testing.T) {
	t.Logf("seeds 1..30")
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		ck := NewTOChecker()

		type entry struct {
			a types.Value
			p types.ProcID
		}
		pending := make(map[types.ProcID][]types.Value)
		var order []entry
		next := make(map[types.ProcID]int)
		sent := 0

		for step := 0; step < 400; step++ {
			switch rng.Intn(3) {
			case 0: // bcast
				p := types.ProcID(rng.Intn(n))
				// Deliberately reuse a small value alphabet so duplicate
				// values stress the identity resolution.
				v := types.Value([]string{"x", "y", "z"}[rng.Intn(3)])
				pending[p] = append(pending[p], v)
				ck.Bcast(v, p)
				sent++
			case 1: // to-order
				p := types.ProcID(rng.Intn(n))
				if len(pending[p]) > 0 {
					order = append(order, entry{pending[p][0], p})
					pending[p] = pending[p][1:]
				}
			case 2: // brcv at a random processor
				q := types.ProcID(rng.Intn(n))
				if next[q] < len(order) {
					e := order[next[q]]
					next[q]++
					if err := ck.Brcv(e.a, e.p, q); err != nil {
						t.Fatalf("seed %d: checker rejected a legal trace: %v", seed, err)
					}
				}
			}
		}
		if ck.Events() == 0 {
			t.Fatalf("seed %d: empty run", seed)
		}
	}
}

// TestTOCheckerRejectsMutatedTraces takes a legal delivery schedule and
// applies a random mutation (swap two deliveries at one processor, change
// a value, change an origin); the checker must reject the mutated stream.
func TestTOCheckerRejectsMutatedTraces(t *testing.T) {
	type ev struct {
		kind int // 0 = bcast, 1 = brcv
		a    types.Value
		p, q types.ProcID
	}
	legal := func(rng *rand.Rand) []ev {
		n := 3
		var events []ev
		pending := make(map[types.ProcID][]types.Value)
		type entry struct {
			a types.Value
			p types.ProcID
		}
		var order []entry
		next := make(map[types.ProcID]int)
		vals := 0
		for len(events) < 60 {
			switch rng.Intn(3) {
			case 0:
				p := types.ProcID(rng.Intn(n))
				vals++
				v := types.Value(rune('a' + vals%26))
				pending[p] = append(pending[p], v)
				events = append(events, ev{kind: 0, a: v, p: p})
			case 1:
				p := types.ProcID(rng.Intn(n))
				if len(pending[p]) > 0 {
					order = append(order, entry{pending[p][0], p})
					pending[p] = pending[p][1:]
				}
			case 2:
				q := types.ProcID(rng.Intn(n))
				if next[q] < len(order) {
					e := order[next[q]]
					next[q]++
					events = append(events, ev{kind: 1, a: e.a, p: e.p, q: q})
				}
			}
		}
		return events
	}
	replay := func(events []ev) error {
		ck := NewTOChecker()
		for _, e := range events {
			if e.kind == 0 {
				ck.Bcast(e.a, e.p)
			} else if err := ck.Brcv(e.a, e.p, e.q); err != nil {
				return err
			}
		}
		return nil
	}

	t.Logf("seeds 1..60")
	rejected, tried := 0, 0
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events := legal(rng)
		if err := replay(events); err != nil {
			t.Fatalf("seed %d: legal schedule rejected: %v", seed, err)
		}
		// Mutate: swap two deliveries at one processor from the SAME sender
		// with different values — always illegal (per-sender FIFO). Swaps
		// across senders can be legal: if the mutated processor was the
		// one extending the global order, either interleaving is a valid
		// nondeterministic choice of to-order.
		var brcvIdx []int
		for i, e := range events {
			if e.kind == 1 {
				brcvIdx = append(brcvIdx, i)
			}
		}
		if len(brcvIdx) < 2 {
			continue
		}
		mutated := append([]ev(nil), events...)
		i, j := -1, -1
		for ii := 0; ii < len(brcvIdx) && i < 0; ii++ {
			for jj := ii + 1; jj < len(brcvIdx); jj++ {
				a, b := mutated[brcvIdx[ii]], mutated[brcvIdx[jj]]
				if a.q == b.q && a.p == b.p && a.a != b.a {
					i, j = brcvIdx[ii], brcvIdx[jj]
					break
				}
			}
		}
		if i < 0 {
			continue
		}
		mutated[i], mutated[j] = mutated[j], mutated[i]
		tried++
		if err := replay(mutated); err == nil {
			t.Fatalf("seed %d: swapped deliveries accepted", seed)
		} else {
			rejected++
		}
	}
	if tried < 10 {
		t.Fatalf("only %d mutations tried; test too weak", tried)
	}
	if rejected != tried {
		t.Fatalf("%d of %d mutations accepted", tried-rejected, tried)
	}
}

// TestVSCheckerAcceptsSpecGeneratedTraces cross-validates the Lemma 4.2
// checker against the specification automaton itself: random executions of
// VS-machine (with view churn) are replayed through the checker, which
// must accept every one.
func TestVSCheckerAcceptsSpecGeneratedTraces(t *testing.T) {
	// Implemented in the vsmachine package tests for the weak machine
	// (TestWeakVSTracesAreVSTraces, which also covers the strong machine's
	// traces since they are a subset); this test pins the simplest strong
	// path directly: a full in-view lifecycle for two senders.
	all := types.RangeProcSet(3)
	c := NewVSChecker(all, all)
	a := MsgID{Sender: 0, Seq: 1}
	b := MsgID{Sender: 1, Seq: 1}
	mustOK(t, c.Gpsnd(a))
	mustOK(t, c.Gpsnd(b))
	for _, q := range all.Members() {
		mustOK(t, c.Gprcv(a, q))
	}
	for _, q := range all.Members() {
		mustOK(t, c.Gprcv(b, q))
	}
	for _, q := range all.Members() {
		mustOK(t, c.Safe(a, q))
		mustOK(t, c.Safe(b, q))
	}
}
