package sweep

// This file is the batch-apply primitive behind the RSM's commutativity-
// aware parallel apply (internal/rsm): an ordered stream of operations is
// cut into contiguous segments of pairwise non-conflicting ("commuting")
// operations — maximal antichains under the conflict relation, in the
// greedy online sense — and each segment's per-operation work is fanned
// across the worker pool while the state mutations are installed serially
// in stream order.
//
// The determinism discipline is the same as Run's, applied inside one
// batch instead of across independent runs:
//
//   - the plan is a pure function of the stream and the conflict relation
//     (no timing, no worker identity), so every replica and every worker
//     count computes the same segments;
//   - compute(i) is a pure function of operation i and of the state as of
//     the segment boundary — operations in a segment commute, so no
//     compute in the segment changes another's input — and its result
//     lands in a caller-owned slot for index i;
//   - install(i) runs on the calling goroutine in ascending index order,
//     so the state after every segment (and the client-visible ack order)
//     is byte-identical to a serial apply of the stream.
//
// Only the conflict relation is consulted for the cuts: a stream of
// mutually commuting operations becomes one wide segment (all-cores
// apply), a stream of all-conflicting operations degenerates to
// single-index segments (exactly the serial loop).

// Span is one planned segment: the half-open index range [Lo, Hi) of a
// maximal run of pairwise non-conflicting operations.
type Span struct{ Lo, Hi int }

// Len returns the number of operations in the segment.
func (s Span) Len() int { return s.Hi - s.Lo }

// PlanSegments cuts the index stream [0, n) into contiguous segments of
// pairwise non-conflicting indices: index j joins the current segment iff
// conflicts(i, j) is false for every i already in it, and starts a new
// segment otherwise. conflicts is only ever queried with i < j; callers
// whose relation may be asymmetric must symmetrize it (the rsm layer
// does). maxSpan > 0 additionally caps segment length, bounding the
// planner's O(len²) pairwise queries and the latency of any one barrier;
// maxSpan <= 0 leaves segments uncapped.
//
// The plan depends only on (n, conflicts, maxSpan) — never on timing or
// worker count — which is what lets every replica of a state machine cut
// an identical stream identically.
func PlanSegments(n, maxSpan int, conflicts func(i, j int) bool) []Span {
	if n <= 0 {
		return nil
	}
	spans := make([]Span, 0, 1)
	lo := 0
	for j := 1; j < n; j++ {
		cut := maxSpan > 0 && j-lo >= maxSpan
		for i := lo; !cut && i < j; i++ {
			cut = conflicts(i, j)
		}
		if cut {
			spans = append(spans, Span{lo, j})
			lo = j
		}
	}
	return append(spans, Span{lo, n})
}

// ApplyOrdered applies an ordered operation stream with commuting-segment
// parallelism: the stream is cut by PlanSegments, each segment's
// compute(i) calls are fanned across the worker pool (Run's work-stealing
// with slot-per-index results), and install(i) then runs serially in
// ascending index order on the calling goroutine. The resulting state and
// install order are byte-identical to the serial loop
//
//	for i := 0; i < n; i++ { compute(i); install(i) }
//
// provided compute(i) reads only operation i and state no operation in
// its own segment writes — which is exactly what a sound conflict
// relation asserts. compute must be safe for concurrent invocation on
// distinct indices; install need not be (it is never called
// concurrently). The planned segments are returned so callers can
// observe antichain sizes (the rsm layer's histogram).
//
// workers <= 1 skips the fan-out entirely and is the reference serial
// apply; single-index segments are computed inline at any worker count
// (a goroutine barrier for one index is pure overhead).
func ApplyOrdered(workers, n, maxSpan int, conflicts func(i, j int) bool, compute, install func(i int)) []Span {
	spans := PlanSegments(n, maxSpan, conflicts)
	workers = Workers(workers)
	for _, sp := range spans {
		if workers <= 1 || sp.Len() == 1 {
			for i := sp.Lo; i < sp.Hi; i++ {
				compute(i)
			}
		} else {
			lo := sp.Lo
			Do(workers, sp.Len(), func(k int) { compute(lo + k) })
		}
		for i := sp.Lo; i < sp.Hi; i++ {
			install(i)
		}
	}
	return spans
}
