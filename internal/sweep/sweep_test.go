package sweep

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunMatchesSerial pins the engine's contract: for a pure fn, the
// result slice is identical at every worker count, including order.
func TestRunMatchesSerial(t *testing.T) {
	fn := func(i int) string { return fmt.Sprintf("job-%d-%d", i, i*i) }
	const n = 257
	want := Run(1, n, fn)
	for _, w := range []int{2, 3, 4, 8, runtime.GOMAXPROCS(0), n + 5} {
		got := Run(w, n, fn)
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestRunEachIndexOnce checks no index is dropped or run twice, under
// uneven job durations that force stealing.
func TestRunEachIndexOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	rng := rand.New(rand.NewSource(7))
	cost := make([]int, n)
	for i := range cost {
		cost[i] = rng.Intn(2000)
	}
	Run(8, n, func(i int) int {
		counts[i].Add(1)
		// Uneven spin so early spans drain at very different rates.
		x := 0
		for k := 0; k < cost[i]; k++ {
			x += k
		}
		return x
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestRunStealsTail: one pathological span (a single slow prefix job)
// must not serialize the rest — the other workers steal the tail. The
// assertion is on wall-clock shape, so keep it loose: with 4 workers and
// one job 50× the others, total time must be far below the serial sum.
func TestRunStealsTail(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs 2+ procs for a timing assertion")
	}
	const n = 64
	unit := 2 * time.Millisecond
	start := time.Now()
	Run(4, n, func(i int) int {
		d := unit
		if i == 0 {
			d = 20 * unit
		}
		time.Sleep(d)
		return i
	})
	elapsed := time.Since(start)
	serial := time.Duration(n-1)*unit + 20*unit
	if elapsed > serial*3/4 {
		t.Fatalf("no speedup: parallel %v vs serial %v", elapsed, serial)
	}
}

// TestRunPanicPropagates: a job panic surfaces in the caller, naming the
// lowest panicking index deterministically.
func TestRunPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic", w)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "job 3 panicked") || !strings.Contains(msg, "boom") {
					t.Fatalf("workers=%d: panic %q does not name lowest index 3", w, msg)
				}
			}()
			Run(w, 10, func(i int) int {
				if i >= 3 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

// TestWorkersNormalization: n <= 0 means GOMAXPROCS.
func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

// TestRunEmptyAndTiny covers the edges: n = 0 returns nil, n < workers
// clamps cleanly.
func TestRunEmptyAndTiny(t *testing.T) {
	if got := Run(8, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v", got)
	}
	got := Run(8, 2, func(i int) int { return i * 10 })
	if len(got) != 2 || got[0] != 0 || got[1] != 10 {
		t.Fatalf("n=2: got %v", got)
	}
}

// TestDo covers the side-effect variant.
func TestDo(t *testing.T) {
	out := make([]int, 100)
	Do(4, 100, func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

// TestRunWorkerIdentity checks the worker index handed to each job is a
// valid pool slot and that results still land by submission index — the
// contract the explorer's per-worker scratch buffers rely on.
func TestRunWorkerIdentity(t *testing.T) {
	const workers, n = 4, 200
	var badWorker atomic.Int64
	got := RunWorker(workers, n, func(w, i int) int {
		if w < 0 || w >= workers {
			badWorker.Store(int64(w) + 1000)
		}
		return i * 3
	})
	if v := badWorker.Load(); v != 0 {
		t.Fatalf("worker index out of range: %d", v-1000)
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("slot %d = %d, want %d", i, v, i*3)
		}
	}
}
