package sweep

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

func TestPlanSegmentsShapes(t *testing.T) {
	never := func(i, j int) bool { return false }
	always := func(i, j int) bool { return true }
	cases := []struct {
		name      string
		n, max    int
		conflicts func(i, j int) bool
		want      []Span
	}{
		{"empty", 0, 0, never, nil},
		{"negative", -3, 0, never, nil},
		{"single", 1, 0, always, []Span{{0, 1}}},
		{"all-commute", 5, 0, never, []Span{{0, 5}}},
		{"all-conflict", 4, 0, always, []Span{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{"capped", 6, 2, never, []Span{{0, 2}, {2, 4}, {4, 6}}},
		// Adjacent pairs conflict: every segment is a singleton even though
		// distant indices commute.
		{"adjacent", 4, 0, func(i, j int) bool { return j == i+1 }, []Span{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		// Index 2 conflicts with 0: [0,2) then [2,n) — the cut is against
		// the whole current segment, not just the previous index.
		{"distant", 4, 0, func(i, j int) bool { return i == 0 && j == 2 }, []Span{{0, 2}, {2, 4}}},
	}
	for _, tc := range cases {
		got := PlanSegments(tc.n, tc.max, tc.conflicts)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: PlanSegments = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPlanSegmentsCoversStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		p := rng.Float64()
		edges := make(map[[2]int]bool)
		conflicts := func(i, j int) bool { return edges[[2]int{i, j}] }
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					edges[[2]int{i, j}] = true
				}
			}
		}
		maxSpan := rng.Intn(6) // 0 = uncapped
		spans := PlanSegments(n, maxSpan, conflicts)
		// Segments tile [0, n) exactly, respect the cap, and are
		// internally conflict-free.
		at := 0
		for _, sp := range spans {
			if sp.Lo != at || sp.Hi <= sp.Lo {
				t.Fatalf("trial %d: span %v does not continue at %d", trial, sp, at)
			}
			if maxSpan > 0 && sp.Len() > maxSpan {
				t.Fatalf("trial %d: span %v exceeds cap %d", trial, sp, maxSpan)
			}
			for i := sp.Lo; i < sp.Hi; i++ {
				for j := i + 1; j < sp.Hi; j++ {
					if conflicts(i, j) {
						t.Fatalf("trial %d: conflicting pair (%d,%d) share span %v", trial, i, j, sp)
					}
				}
			}
			at = sp.Hi
		}
		if at != n {
			t.Fatalf("trial %d: spans end at %d, want %d", trial, at, n)
		}
	}
}

// TestApplyOrderedMatchesSerial: for random conflict graphs, the parallel
// apply's install order and computed effects are byte-identical to the
// serial loop at every worker count.
func TestApplyOrderedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(64)
		edges := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.1 {
					edges[[2]int{i, j}] = true
				}
			}
		}
		conflicts := func(i, j int) bool { return edges[[2]int{i, j}] }

		run := func(workers int) (effects []int, order []int) {
			effects = make([]int, n)
			ApplyOrdered(workers, n, 0, conflicts,
				func(i int) { effects[i] = i * i },
				func(i int) { order = append(order, i) })
			return
		}
		wantEff, wantOrder := run(1)
		for _, w := range []int{2, runtime.GOMAXPROCS(0), runtime.GOMAXPROCS(0) * 2} {
			eff, order := run(w)
			if !reflect.DeepEqual(eff, wantEff) || !reflect.DeepEqual(order, wantOrder) {
				t.Fatalf("trial %d workers=%d diverged from serial", trial, w)
			}
		}
	}
}

// TestApplyOrderedInstallSerialized: install is never invoked concurrently
// and always sees every compute of its own segment completed, even when
// the segment's computes raced across workers.
func TestApplyOrderedInstallSerialized(t *testing.T) {
	const n = 512
	computed := make([]bool, n)
	installed := 0
	spans := ApplyOrdered(8, n, 0,
		func(i, j int) bool { return false }, // one wide segment
		func(i int) { computed[i] = true },
		func(i int) {
			if i != installed {
				t.Fatalf("install order broken: got %d, want %d", i, installed)
			}
			if !computed[i] {
				t.Fatalf("install %d ran before its compute", i)
			}
			installed++
		})
	if installed != n {
		t.Fatalf("installed %d of %d", installed, n)
	}
	if len(spans) != 1 || spans[0].Len() != n {
		t.Fatalf("expected one wide segment, got %v", spans)
	}
}

func BenchmarkPlanSegments(b *testing.B) {
	for _, shape := range []struct {
		name      string
		conflicts func(i, j int) bool
	}{
		{"commuting", func(i, j int) bool { return false }},
		{"conflicting", func(i, j int) bool { return true }},
		{"keyed-64", func(i, j int) bool { return i%64 == j%64 }},
	} {
		b.Run(shape.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PlanSegments(1024, 256, shape.conflicts)
			}
			b.ReportMetric(float64(1024), "ops/plan")
		})
	}
}
