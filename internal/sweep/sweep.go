// Package sweep is the parallel execution engine for independent
// deterministic runs: experiment trials, chaos campaign instances, ddmin
// probe evaluations, and seed sweeps. It fans a job set across a pool of
// workers with contiguous-range work stealing and aggregates results in
// submission order, so the output of a parallel sweep is byte-for-byte
// identical to the serial one — which is what keeps every run a checkable
// execution (the harness can diff artifacts across worker counts, and a
// CI failure reproduces identically with -workers 1).
//
// Two facts make this sound:
//
//   - every job is a pure function of its index (a simulation owns its
//     Sim, rng, network, and obs Registry; nothing is shared), so
//     execution order cannot change any job's result;
//   - results land in a pre-allocated slot per index, so aggregation
//     order is the submission order no matter which worker ran the job.
//
// Scheduling is work stealing over contiguous index ranges: each worker
// starts with an equal span of the index space and takes from its span's
// front; a worker whose span drains steals the back half of the largest
// remaining span. Contiguous ranges keep neighboring jobs (which tend to
// share parameter shapes, e.g. an n-sweep) on one worker, and stealing
// halves keeps the tail balanced even when job costs are wildly uneven
// (a ddmin round mixes near-empty and near-full schedules).
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: n <= 0 means GOMAXPROCS
// (the CLI flags' "default NumCPU" behavior).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// span is one worker's contiguous slice [lo, hi) of the index space.
type span struct {
	mu     sync.Mutex
	lo, hi int
}

// take removes and returns the span's first index.
func (s *span) take() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	i := s.lo
	s.lo++
	return i, true
}

// size returns the remaining length (racy snapshot; used only as a
// stealing heuristic).
func (s *span) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hi - s.lo
}

// carve splits off the back half of the span (a single remaining index is
// taken whole) and returns it, or ok=false if the span is empty.
func (s *span) carve() (lo, hi int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.hi - s.lo
	if n <= 0 {
		return 0, 0, false
	}
	mid := s.lo + n/2
	lo, hi = mid, s.hi
	s.hi = mid
	return lo, hi, true
}

// install replaces the span's range (only ever called by the owner on its
// own drained span).
func (s *span) install(lo, hi int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lo, s.hi = lo, hi
}

// Run evaluates fn(i) for every i in [0, n) across the given number of
// workers (normalized by Workers) and returns the results indexed by i —
// submission order, regardless of which worker ran what when. fn must be
// safe for concurrent invocation on distinct indices and should not share
// mutable state between indices; determinism of the aggregate is then
// inherited from determinism of each fn(i).
//
// A panic in any job is re-raised in the caller once all workers have
// stopped; when several jobs panic, the lowest index wins (deterministic).
// workers == 1 degenerates to a plain serial loop on the calling
// goroutine.
func Run[T any](workers, n int, fn func(int) T) []T {
	return RunWorker(workers, n, func(_, i int) T { return fn(i) })
}

// RunWorker is Run for jobs that want the identity of the worker goroutine
// executing them: fn receives (worker, i) with worker in [0, effective
// worker count). Job i's result must be a pure function of i alone — the
// worker index exists only so fn can reuse per-worker scratch (buffers,
// hash state) without synchronization, never to influence the result. The
// bounded exhaustive explorer's wave expansion is the motivating caller:
// each worker owns one fingerprint encoder reused across every state it
// expands.
func RunWorker[T any](workers, n int, fn func(worker, i int) T) []T {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("sweep: job %d panicked: %v", i, r))
					}
				}()
				out[i] = fn(0, i)
			}()
		}
		return out
	}

	spans := make([]*span, workers)
	for w := 0; w < workers; w++ {
		spans[w] = &span{lo: w * n / workers, hi: (w + 1) * n / workers}
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicIdx = -1
		panicVal any
		panicked bool
	)
	record := func(i int, v any) {
		panicMu.Lock()
		defer panicMu.Unlock()
		if !panicked || i < panicIdx {
			panicked, panicIdx, panicVal = true, i, v
		}
	}
	runOne := func(w, i int) {
		defer func() {
			if r := recover(); r != nil {
				record(i, r)
			}
		}()
		out[i] = fn(w, i)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			mine := spans[self]
			for {
				if i, ok := mine.take(); ok {
					runOne(self, i)
					continue
				}
				// Own span drained: steal the back half of the largest
				// remaining span. No victim means every other span is
				// empty too — any index not yet run is in some owner's
				// span (owners only exit with an empty span), so exiting
				// strands nothing.
				victim := -1
				best := 0
				for v, s := range spans {
					if v == self {
						continue
					}
					if sz := s.size(); sz > best {
						best, victim = sz, v
					}
				}
				if victim < 0 {
					return
				}
				if lo, hi, ok := spans[victim].carve(); ok {
					mine.install(lo, hi)
				}
				// A failed carve means the victim drained between the size
				// probe and the carve; rescan.
			}
		}(w)
	}
	wg.Wait()
	if panicked {
		panic(fmt.Sprintf("sweep: job %d panicked: %v", panicIdx, panicVal))
	}
	return out
}

// Do is Run for jobs whose results are side effects on their own slot
// (e.g. filling a caller-owned row slice).
func Do(workers, n int, fn func(int)) {
	Run(workers, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
