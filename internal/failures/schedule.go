package failures

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/types"
)

// Schedule is a list of failure-status events to be applied at their
// recorded times. It is the declarative form of an adversary: the chaos
// harness generates schedules, applies them to live clusters, shrinks the
// failing ones, and serializes them into replayable artifacts.
type Schedule []Event

// Sort orders the schedule by time, with the original relative order kept
// among simultaneous events (the order of application matters for replay
// fidelity, so sorting must be stable).
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Time < s[j].Time })
}

// End returns the time of the last event, or zero for an empty schedule.
func (s Schedule) End() sim.Time {
	var end sim.Time
	for _, e := range s {
		if e.Time > end {
			end = e.Time
		}
	}
	return end
}

// Apply applies one event's status change to the oracle, now. The event's
// recorded Time is not consulted; use ApplyAt to honor it.
func (o *Oracle) Apply(e Event) {
	if e.Channel {
		o.SetChannel(e.Pair.From, e.Pair.To, e.Status)
	} else {
		o.SetProc(e.Proc, e.Status)
	}
}

// ApplyAt schedules every event of the schedule onto the simulator so that
// it is applied to the oracle exactly at its recorded time. Events are
// scheduled up front, so among callbacks at the same instant the schedule's
// events fire in list order, before any work scheduled later — which makes
// a replayed schedule reproduce the oracle history byte for byte.
func (s Schedule) ApplyAt(sm *sim.Sim, o *Oracle) {
	for _, e := range s {
		e := e
		sm.At(e.Time, func() { o.Apply(e) })
	}
}

// eventJSON is the wire form of an Event: times in nanoseconds of virtual
// time, statuses by name, and the proc/channel variants kept distinct so a
// hand-edited artifact cannot silently conflate them.
type eventJSON struct {
	TimeNS  int64  `json:"t_ns"`
	Channel bool   `json:"channel,omitempty"`
	Proc    *int   `json:"proc,omitempty"`
	From    *int   `json:"from,omitempty"`
	To      *int   `json:"to,omitempty"`
	Status  string `json:"status"`
}

// ParseStatus parses a status name produced by Status.String.
func ParseStatus(s string) (Status, error) {
	switch s {
	case "good":
		return Good, nil
	case "bad":
		return Bad, nil
	case "ugly":
		return Ugly, nil
	case "amnesia":
		return Amnesia, nil
	default:
		return Good, fmt.Errorf("failures: unknown status %q", s)
	}
}

// MarshalJSON encodes the event in the wire form.
func (e Event) MarshalJSON() ([]byte, error) {
	w := eventJSON{TimeNS: int64(e.Time), Channel: e.Channel, Status: e.Status.String()}
	if e.Channel {
		from, to := int(e.Pair.From), int(e.Pair.To)
		w.From, w.To = &from, &to
	} else {
		p := int(e.Proc)
		w.Proc = &p
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, rejecting malformed variants.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	st, err := ParseStatus(w.Status)
	if err != nil {
		return err
	}
	out := Event{Time: sim.Time(w.TimeNS), Channel: w.Channel, Status: st}
	if w.Channel {
		if w.From == nil || w.To == nil || w.Proc != nil {
			return fmt.Errorf("failures: channel event needs from/to and no proc")
		}
		out.Pair = Pair{From: types.ProcID(*w.From), To: types.ProcID(*w.To)}
	} else {
		if w.Proc == nil || w.From != nil || w.To != nil {
			return fmt.Errorf("failures: proc event needs proc and no from/to")
		}
		out.Proc = types.ProcID(*w.Proc)
	}
	*e = out
	return nil
}
