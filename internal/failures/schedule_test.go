package failures

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Schedule{
		{Time: sim.Time(5 * time.Millisecond), Proc: 2, Status: Bad},
		{Time: sim.Time(5 * time.Millisecond), Channel: true, Pair: Pair{From: 0, To: 1}, Status: Ugly},
		{Time: sim.Time(9 * time.Millisecond), Proc: 2, Status: Good},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Errorf("event %d round-tripped to %v, want %v", i, back[i], s[i])
		}
	}
	// Re-encoding is byte-identical (artifacts must be stable).
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("re-encoding differs:\n%s\n%s", data, data2)
	}
}

func TestScheduleJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"t_ns":1,"status":"great","proc":0}`,               // unknown status
		`{"t_ns":1,"status":"bad"}`,                          // proc event without proc
		`{"t_ns":1,"channel":true,"status":"bad","to":1}`,    // channel event without from
		`{"t_ns":1,"status":"bad","proc":0,"from":1,"to":2}`, // mixed variant
	}
	for _, c := range cases {
		var e Event
		if err := json.Unmarshal([]byte(c), &e); err == nil {
			t.Errorf("accepted malformed event %s", c)
		}
	}
}

func TestScheduleSortAndEnd(t *testing.T) {
	s := Schedule{
		{Time: 30, Proc: 0, Status: Good},
		{Time: 10, Proc: 1, Status: Bad},
		{Time: 10, Channel: true, Pair: Pair{From: 1, To: 2}, Status: Bad},
	}
	if s.End() != 30 {
		t.Errorf("End = %v, want 30", s.End())
	}
	s.Sort()
	if s[0].Time != 10 || s[2].Time != 30 {
		t.Fatalf("not sorted: %v", s)
	}
	// Stable: the two simultaneous events keep their relative order.
	if s[0].Channel || !s[1].Channel {
		t.Errorf("simultaneous events reordered: %v", s)
	}
	if (Schedule{}).End() != 0 {
		t.Errorf("empty schedule End != 0")
	}
}

// TestApplyAtReproducesHistory pins the replay fidelity contract: applying
// a schedule onto a fresh sim+oracle reproduces the recorded oracle history
// exactly — same events, same times, same order.
func TestApplyAtReproducesHistory(t *testing.T) {
	s := Schedule{
		{Time: sim.Time(2 * time.Millisecond), Proc: 1, Status: Ugly},
		{Time: sim.Time(2 * time.Millisecond), Channel: true, Pair: Pair{From: 0, To: 1}, Status: Bad},
		{Time: sim.Time(7 * time.Millisecond), Proc: 1, Status: Good},
	}
	sm := sim.New(1)
	o := NewOracle(sm.Now)
	s.ApplyAt(sm, o)
	if err := sm.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	h := o.History()
	if len(h) != len(s) {
		t.Fatalf("history has %d events, want %d", len(h), len(s))
	}
	for i := range s {
		if h[i] != s[i] {
			t.Errorf("history[%d] = %v, want %v", i, h[i], s[i])
		}
	}
	if o.Proc(1) != Good || o.Channel(0, 1) != Bad {
		t.Errorf("final statuses wrong: proc1=%v ch01=%v", o.Proc(1), o.Channel(0, 1))
	}
}

// TestQuorumExceedingSchedule pins the declarative form of a quorum-loss
// adversary: a single instant at which a majority of processors goes Bad
// or Amnesia at once (more than any quorum can absorb), held, then healed
// in a staggered wave. The schedule must survive a JSON round trip
// byte-for-byte and ApplyAt must reproduce it in order — including the
// list order among the simultaneous strike events, which replay fidelity
// depends on.
func TestQuorumExceedingSchedule(t *testing.T) {
	const n = 5 // quorum-loss threshold (n+1)/2 = 3
	strike := sim.Time(4 * time.Millisecond)
	s := Schedule{
		{Time: strike, Proc: 4, Status: Bad},
		{Time: strike, Proc: 1, Status: Amnesia},
		{Time: strike, Proc: 3, Status: Amnesia},
		{Time: sim.Time(11 * time.Millisecond), Proc: 3, Status: Good},
		{Time: sim.Time(12 * time.Millisecond), Proc: 1, Status: Good},
		{Time: sim.Time(13 * time.Millisecond), Proc: 4, Status: Good},
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Errorf("event %d round-tripped to %v, want %v", i, back[i], s[i])
		}
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("re-encoding differs:\n%s\n%s", data, data2)
	}

	sm := sim.New(1)
	o := NewOracle(sm.Now)
	back.ApplyAt(sm, o)
	// Observe the strike instant from inside the run: at strike time (after
	// the schedule's same-instant events, which were scheduled first) a
	// majority must be simultaneously non-Good.
	var faultedAtStrike int
	sm.At(strike, func() {
		for p := 0; p < n; p++ {
			if o.Proc(types.ProcID(p)) != Good {
				faultedAtStrike++
			}
		}
	})
	if err := sm.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if want := (n + 1) / 2; faultedAtStrike < want {
		t.Errorf("%d procs faulted at the strike, want >= %d (quorum loss)", faultedAtStrike, want)
	}
	h := o.History()
	if len(h) != len(s) {
		t.Fatalf("history has %d events, want %d", len(h), len(s))
	}
	for i := range s {
		if h[i] != s[i] {
			t.Errorf("history[%d] = %v, want %v (simultaneous strikes must keep list order)", i, h[i], s[i])
		}
	}
	for p := 0; p < n; p++ {
		if got := o.Proc(types.ProcID(p)); got != Good {
			t.Errorf("proc %d = %v after the heal wave, want Good", p, got)
		}
	}
}

// TestOracleStatusRoundTrips drives a processor and a channel through the
// full good→ugly→bad→good cycle, checking the current status, the history,
// and the consistently-partitioned predicate across a heal.
func TestOracleStatusRoundTrips(t *testing.T) {
	o, now := newOracle()
	cycle := []Status{Ugly, Bad, Good}
	for i, st := range cycle {
		*now = sim.Time(i + 1)
		o.SetProc(0, st)
		if o.Proc(0) != st {
			t.Errorf("proc status after step %d = %v, want %v", i, o.Proc(0), st)
		}
		o.SetChannel(0, 1, st)
		if o.Channel(0, 1) != st {
			t.Errorf("channel status after step %d = %v, want %v", i, o.Channel(0, 1), st)
		}
		if o.Channel(1, 0) != Good {
			t.Errorf("reverse channel perturbed at step %d", i)
		}
	}
	h := o.History()
	if len(h) != 2*len(cycle) {
		t.Fatalf("history has %d events, want %d", len(h), 2*len(cycle))
	}
	for i, st := range cycle {
		if h[2*i].Status != st || h[2*i+1].Status != st {
			t.Errorf("history step %d statuses %v/%v, want %v", i, h[2*i].Status, h[2*i+1].Status, st)
		}
	}
	// StatusAfter replays the same cycle from the history.
	for i, st := range cycle {
		if got := StatusAfter(h, sim.Time(i+1), 0); got != st {
			t.Errorf("StatusAfter(step %d) = %v, want %v", i, got, st)
		}
	}

	// The consistently-partitioned predicate across a heal: isolated, then
	// healed (predicate must turn false — boundary channels are good), then
	// isolated again.
	universe := types.RangeProcSet(4)
	q := types.NewProcSet(0, 1)
	o.Isolate(q, universe)
	if !o.IsIsolated(q, universe) {
		t.Fatal("isolation not established")
	}
	o.Heal(universe)
	if o.IsIsolated(q, universe) {
		t.Fatal("IsIsolated still true after heal (boundary channels are good)")
	}
	o.Isolate(q, universe)
	if !o.IsIsolated(q, universe) {
		t.Fatal("re-isolation after heal not established")
	}
	// A member going ugly breaks the hypothesis; recovering restores it.
	o.SetProc(1, Ugly)
	if o.IsIsolated(q, universe) {
		t.Error("IsIsolated true with an ugly member")
	}
	o.SetProc(1, Good)
	if !o.IsIsolated(q, universe) {
		t.Error("IsIsolated false after the member recovered")
	}
}
