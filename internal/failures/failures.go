// Package failures models the paper's Figure 4 failure-status machinery:
// each processor and each ordered pair of processors is, at any moment,
// good, bad, or ugly. The intended meanings (Section 3.2):
//
//   - a good processor takes enabled steps with no time delay; a good channel
//     delivers every packet sent while it is good within a fixed time δ;
//   - a bad processor is stopped; a bad channel delivers nothing;
//   - an ugly processor runs at nondeterministic speed (or stops); an ugly
//     channel may or may not deliver, with no timing bound.
//
// The package also provides partition schedules (scripted sequences of
// status changes) and the "consistently partitioned" predicate used by the
// conditional properties TO-property and VS-property: a component Q is
// consistently isolated when every location in Q and every pair within Q is
// good while every pair straddling Q's boundary is bad.
package failures

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/types"
)

// Status is the good/bad/ugly failure status of a location or channel.
type Status int

// The three statuses of Figure 4, plus Amnesia. Good is the zero value,
// matching the paper's convention that the default status (before any
// failure event) is good.
//
// Amnesia extends the paper's model with a crash that loses volatile
// state: like Bad the processor is stopped, but on the transition back to
// Good it restarts from stable storage instead of resuming in place (see
// internal/recovery). Amnesia is a processor status; network layers treat
// an amnesiac channel endpoint exactly like a bad one.
const (
	Good Status = iota
	Bad
	Ugly
	Amnesia
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case Good:
		return "good"
	case Bad:
		return "bad"
	case Ugly:
		return "ugly"
	case Amnesia:
		return "amnesia"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Down reports whether the status means "stopped": a bad or amnesiac
// processor takes no steps and neither sends nor receives. The two differ
// only in what survives the transition back to good (Bad preserves
// volatile state, Amnesia wipes it).
func (s Status) Down() bool { return s == Bad || s == Amnesia }

// Pair is an ordered pair of processors, identifying a directed channel.
type Pair struct {
	From, To types.ProcID
}

// Event records one failure-status input action: either a processor event
// (Pair.To == Pair.From == P) or a channel event. Proc events have Channel
// false.
type Event struct {
	Time    sim.Time
	Channel bool
	Proc    types.ProcID // valid when !Channel
	Pair    Pair         // valid when Channel
	Status  Status
}

// String renders the event in the paper's notation, e.g. "bad_{p1,p2}@5ms".
func (e Event) String() string {
	if e.Channel {
		return fmt.Sprintf("%v_{%v,%v}@%v", e.Status, e.Pair.From, e.Pair.To, e.Time)
	}
	return fmt.Sprintf("%v_%v@%v", e.Status, e.Proc, e.Time)
}

// Oracle tracks the current failure status of every processor and channel
// and records the history of status events. Consumers (the simulated
// network, the node runtimes) query it; scenarios drive it.
type Oracle struct {
	procs    map[types.ProcID]Status
	channels map[Pair]Status
	history  []Event
	now      func() sim.Time
	watchers []func(Event)
}

// NewOracle creates an oracle whose event timestamps come from now (usually
// a *sim.Sim's Now). Everything starts good, per the paper's default.
func NewOracle(now func() sim.Time) *Oracle {
	return &Oracle{
		procs:    make(map[types.ProcID]Status),
		channels: make(map[Pair]Status),
		now:      now,
	}
}

// Watch registers a callback invoked on every status change, after the
// change is applied. The network layer uses this to react to healing links.
func (o *Oracle) Watch(fn func(Event)) { o.watchers = append(o.watchers, fn) }

// SetProc applies a failure-status input action to a processor.
func (o *Oracle) SetProc(p types.ProcID, s Status) {
	o.procs[p] = s
	ev := Event{Time: o.now(), Proc: p, Status: s}
	o.history = append(o.history, ev)
	for _, w := range o.watchers {
		w(ev)
	}
}

// SetChannel applies a failure-status input action to the directed channel
// from→to.
func (o *Oracle) SetChannel(from, to types.ProcID, s Status) {
	pr := Pair{From: from, To: to}
	o.channels[pr] = s
	ev := Event{Time: o.now(), Channel: true, Pair: pr, Status: s}
	o.history = append(o.history, ev)
	for _, w := range o.watchers {
		w(ev)
	}
}

// Proc returns the current status of processor p (Good if never set).
func (o *Oracle) Proc(p types.ProcID) Status { return o.procs[p] }

// Channel returns the current status of the directed channel from→to.
func (o *Oracle) Channel(from, to types.ProcID) Status {
	return o.channels[Pair{From: from, To: to}]
}

// History returns all status events applied so far, in order. The returned
// slice is shared; callers must not modify it.
func (o *Oracle) History() []Event { return o.history }

// LastEventTime returns the time of the most recent status event, or zero
// if none occurred.
func (o *Oracle) LastEventTime() sim.Time {
	if len(o.history) == 0 {
		return 0
	}
	return o.history[len(o.history)-1].Time
}

// Isolate drives the statuses so that component Q is consistently isolated:
// every processor in Q good, every channel within Q good, and every channel
// between Q and the rest of the universe bad (in both directions). Statuses
// of processors and channels entirely outside Q are left untouched.
//
// This is exactly the hypothesis of the conditional properties (clauses
// 2(b) and 2(c) of Figures 5 and 7).
func (o *Oracle) Isolate(q types.ProcSet, universe types.ProcSet) {
	for _, p := range q.Members() {
		o.SetProc(p, Good)
	}
	for _, p := range q.Members() {
		for _, r := range universe.Members() {
			if p == r {
				continue
			}
			if q.Contains(r) {
				o.SetChannel(p, r, Good)
			} else {
				o.SetChannel(p, r, Bad)
				o.SetChannel(r, p, Bad)
			}
		}
	}
}

// Heal sets every processor and every channel in the universe good.
func (o *Oracle) Heal(universe types.ProcSet) {
	for _, p := range universe.Members() {
		o.SetProc(p, Good)
		for _, r := range universe.Members() {
			if p != r {
				o.SetChannel(p, r, Good)
			}
		}
	}
}

// Partition splits the universe into the given disjoint components: within
// each component everything is good; across components every channel is bad.
// Processors not mentioned in any component are isolated entirely.
func (o *Oracle) Partition(universe types.ProcSet, components ...types.ProcSet) {
	comp := make(map[types.ProcID]int)
	for i, c := range components {
		for _, p := range c.Members() {
			comp[p] = i + 1
		}
	}
	for _, p := range universe.Members() {
		o.SetProc(p, Good)
		for _, r := range universe.Members() {
			if p == r {
				continue
			}
			if comp[p] != 0 && comp[p] == comp[r] {
				o.SetChannel(p, r, Good)
			} else {
				o.SetChannel(p, r, Bad)
			}
		}
	}
}

// IsIsolated reports whether, under the current statuses, component Q is
// consistently isolated with respect to the universe: all members and
// intra-Q channels good, all channels straddling the boundary bad.
func (o *Oracle) IsIsolated(q types.ProcSet, universe types.ProcSet) bool {
	for _, p := range q.Members() {
		if o.Proc(p) != Good {
			return false
		}
		for _, r := range universe.Members() {
			if p == r {
				continue
			}
			if q.Contains(r) {
				if o.Channel(p, r) != Good {
					return false
				}
			} else {
				if o.Channel(p, r) != Bad || o.Channel(r, p) != Bad {
					return false
				}
			}
		}
	}
	return true
}

// StatusAfter replays a prefix of a history and returns the status of a
// processor after it, defaulting to Good. It implements the paper's
// "failure status of a location after β" definition for analysis over
// recorded traces.
func StatusAfter(history []Event, upTo sim.Time, p types.ProcID) Status {
	s := Good
	for _, e := range history {
		if e.Time > upTo {
			break
		}
		if !e.Channel && e.Proc == p {
			s = e.Status
		}
	}
	return s
}

// ChannelStatusAfter is StatusAfter for a directed channel.
func ChannelStatusAfter(history []Event, upTo sim.Time, from, to types.ProcID) Status {
	s := Good
	for _, e := range history {
		if e.Time > upTo {
			break
		}
		if e.Channel && e.Pair.From == from && e.Pair.To == to {
			s = e.Status
		}
	}
	return s
}
