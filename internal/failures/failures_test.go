package failures

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
)

func newOracle() (*Oracle, *sim.Time) {
	now := sim.Time(0)
	return NewOracle(func() sim.Time { return now }), &now
}

func TestDefaultsAreGood(t *testing.T) {
	o, _ := newOracle()
	if o.Proc(3) != Good {
		t.Error("fresh processor not good")
	}
	if o.Channel(1, 2) != Good {
		t.Error("fresh channel not good")
	}
}

func TestSetAndQuery(t *testing.T) {
	o, now := newOracle()
	*now = sim.Time(5)
	o.SetProc(1, Bad)
	o.SetChannel(1, 2, Ugly)
	if o.Proc(1) != Bad || o.Proc(2) != Good {
		t.Error("proc status wrong")
	}
	if o.Channel(1, 2) != Ugly || o.Channel(2, 1) != Good {
		t.Error("channel status wrong (must be directed)")
	}
	h := o.History()
	if len(h) != 2 || h[0].Time != sim.Time(5) || h[0].Status != Bad || h[1].Channel != true {
		t.Fatalf("history = %v", h)
	}
	if o.LastEventTime() != sim.Time(5) {
		t.Errorf("LastEventTime = %v", o.LastEventTime())
	}
}

func TestStatusString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" || Ugly.String() != "ugly" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status renders empty")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: sim.Time(0), Proc: 1, Status: Bad}
	if e.String() != "bad_p1@0s" {
		t.Errorf("proc event = %q", e.String())
	}
	e = Event{Time: sim.Time(0), Channel: true, Pair: Pair{From: 1, To: 2}, Status: Ugly}
	if e.String() != "ugly_{p1,p2}@0s" {
		t.Errorf("channel event = %q", e.String())
	}
}

func TestIsolateMatchesIsIsolated(t *testing.T) {
	o, _ := newOracle()
	universe := types.RangeProcSet(5)
	q := types.NewProcSet(0, 1, 2)
	if o.IsIsolated(q, universe) {
		t.Fatal("fresh oracle reports isolation")
	}
	o.Isolate(q, universe)
	if !o.IsIsolated(q, universe) {
		t.Fatal("Isolate did not establish IsIsolated")
	}
	// Members good, intra-Q channels good, boundary bad both ways.
	if o.Proc(0) != Good || o.Channel(0, 2) != Good {
		t.Error("intra-Q status wrong")
	}
	if o.Channel(0, 3) != Bad || o.Channel(3, 0) != Bad {
		t.Error("boundary not bad")
	}
	// Channels wholly outside Q are untouched (still good).
	if o.Channel(3, 4) != Good {
		t.Error("outside channel modified")
	}
	// Breaking any piece breaks isolation.
	o.SetChannel(0, 1, Ugly)
	if o.IsIsolated(q, universe) {
		t.Error("isolation still reported after degrading an intra-Q link")
	}
}

func TestHealRestoresEverything(t *testing.T) {
	o, _ := newOracle()
	universe := types.RangeProcSet(4)
	o.Isolate(types.NewProcSet(0, 1), universe)
	o.SetProc(3, Bad)
	o.Heal(universe)
	for _, p := range universe.Members() {
		if o.Proc(p) != Good {
			t.Fatalf("proc %v not healed", p)
		}
		for _, q := range universe.Members() {
			if p != q && o.Channel(p, q) != Good {
				t.Fatalf("channel %v→%v not healed", p, q)
			}
		}
	}
}

func TestPartitionComponents(t *testing.T) {
	o, _ := newOracle()
	universe := types.RangeProcSet(6)
	a := types.NewProcSet(0, 1)
	b := types.NewProcSet(2, 3, 4)
	o.Partition(universe, a, b) // p5 in no component: fully isolated
	if o.Channel(0, 1) != Good || o.Channel(2, 4) != Good {
		t.Error("intra-component channels not good")
	}
	if o.Channel(0, 2) != Bad || o.Channel(4, 1) != Bad {
		t.Error("cross-component channels not bad")
	}
	if o.Channel(5, 0) != Bad || o.Channel(3, 5) != Bad {
		t.Error("unassigned processor not isolated")
	}
	if !o.IsIsolated(a, universe) || !o.IsIsolated(b, universe) {
		t.Error("components not isolated per IsIsolated")
	}
}

func TestWatchers(t *testing.T) {
	o, _ := newOracle()
	var seen []Event
	o.Watch(func(e Event) { seen = append(seen, e) })
	o.SetProc(0, Bad)
	o.SetChannel(0, 1, Bad)
	if len(seen) != 2 {
		t.Fatalf("watcher saw %d events, want 2", len(seen))
	}
}

func TestStatusAfterReplay(t *testing.T) {
	o, now := newOracle()
	*now = sim.Time(10)
	o.SetProc(1, Bad)
	*now = sim.Time(20)
	o.SetProc(1, Ugly)
	*now = sim.Time(30)
	o.SetChannel(1, 2, Bad)
	h := o.History()

	cases := []struct {
		upTo sim.Time
		want Status
	}{
		{sim.Time(5), Good},
		{sim.Time(10), Bad},
		{sim.Time(15), Bad},
		{sim.Time(25), Ugly},
	}
	for _, c := range cases {
		if got := StatusAfter(h, c.upTo, 1); got != c.want {
			t.Errorf("StatusAfter(%v) = %v, want %v", c.upTo, got, c.want)
		}
	}
	if got := StatusAfter(h, sim.Time(99), 2); got != Good {
		t.Errorf("untouched processor = %v, want good", got)
	}
	if got := ChannelStatusAfter(h, sim.Time(29), 1, 2); got != Good {
		t.Errorf("channel before event = %v", got)
	}
	if got := ChannelStatusAfter(h, sim.Time(30), 1, 2); got != Bad {
		t.Errorf("channel after event = %v", got)
	}
	if got := ChannelStatusAfter(h, sim.Time(99), 2, 1); got != Good {
		t.Errorf("reverse channel = %v, want good (directed)", got)
	}
}
