package loadbalance

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

func newBalancer(seed int64, n int) (*Balancer, *stack.Cluster) {
	c := stack.NewCluster(stack.Options{Seed: seed, N: n, Delta: time.Millisecond})
	return New(c), c
}

// pumpLoop re-evaluates ownership periodically, as an application would.
func pumpLoop(c *stack.Cluster, b *Balancer, every time.Duration) {
	var tick func()
	tick = func() {
		b.Pump()
		c.Sim.After(every, tick)
	}
	c.Sim.After(every, tick)
}

func TestTasksPartitionAcrossMembers(t *testing.T) {
	b, c := newBalancer(51, 4)
	pumpLoop(c, b, 20*time.Millisecond)
	const tasks = 20
	c.Sim.After(10*time.Millisecond, func() {
		for i := 0; i < tasks; i++ {
			b.Submit(types.ProcID(i%4), Task{Name: fmt.Sprintf("job-%d", i), Work: 5 * time.Millisecond})
		}
	})
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !b.AllDone() {
		t.Fatalf("not all tasks done; node0 sees %d/%d", b.DoneCount(0), tasks)
	}
	// In a stable view, each task executed exactly once, and work spread
	// over more than one member.
	owners := map[types.ProcID]int{}
	for name, execs := range b.Executed {
		if execs != 1 {
			t.Errorf("task %s executed %d times in a stable run", name, execs)
		}
		owners[b.Winner[name]]++
	}
	if len(owners) < 2 {
		t.Errorf("all tasks done by %v; expected spreading", owners)
	}
}

func TestResponsibilityFollowsViewChanges(t *testing.T) {
	b, c := newBalancer(53, 4)
	pumpLoop(c, b, 20*time.Millisecond)
	// Crash node 0 (and its links) before submitting: the remaining three
	// re-partition the work among themselves.
	c.Sim.After(30*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(1, 2, 3), types.NewProcSet(0))
	})
	const tasks = 12
	c.Sim.After(200*time.Millisecond, func() {
		for i := 0; i < tasks; i++ {
			b.Submit(types.ProcID(1+i%3), Task{Name: fmt.Sprintf("job-%d", i), Work: 5 * time.Millisecond})
		}
	})
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, p := range []types.ProcID{1, 2, 3} {
		if got := b.DoneCount(p); got != tasks {
			t.Errorf("%v sees %d/%d done", p, got, tasks)
		}
	}
	for name := range b.Executed {
		if b.Winner[name] == 0 {
			t.Errorf("task %s won by the isolated node", name)
		}
	}
}

func TestPartitionDuplicatesAreReconciled(t *testing.T) {
	b, c := newBalancer(55, 5)
	pumpLoop(c, b, 20*time.Millisecond)
	const tasks = 10
	// Submit in a stable view so everyone knows the tasks, then partition
	// before anyone can complete (work takes longer than the cut delay).
	c.Sim.After(10*time.Millisecond, func() {
		for i := 0; i < tasks; i++ {
			b.Submit(types.ProcID(i%5), Task{Name: fmt.Sprintf("job-%d", i), Work: 300 * time.Millisecond})
		}
	})
	c.Sim.After(100*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3, 4))
	})
	c.Sim.After(1500*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(6 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !b.AllDone() {
		t.Fatalf("not all tasks done after heal; node0 sees %d/%d", b.DoneCount(0), tasks)
	}
	// Both sides may have executed the same task; the winner per task is
	// nevertheless agreed (it is a position in the total order), and no
	// task is lost.
	total := 0
	for name, execs := range b.Executed {
		total += execs
		if _, ok := b.Winner[name]; !ok {
			t.Errorf("task %s has no agreed winner", name)
		}
	}
	if total < tasks {
		t.Errorf("executions %d < tasks %d", total, tasks)
	}
	t.Logf("executions=%d (duplicates across the partition: %d)", total, total-tasks)
}
