// Package loadbalance implements the view-aware work-partitioning
// application that the paper's conclusion points to (Dolev, Segala,
// Shvartsman, "Dynamic Load Balancing with Group Communication" — built on
// this same VS specification). Tasks are announced through the totally
// ordered broadcast service, so every node agrees on the task list; each
// node claims the tasks whose hash ranks to its position in its current
// view, so responsibility re-partitions automatically on every membership
// change, with no coordinator.
//
// Completions are also announced through TO. During a partition both sides
// may work on (and the non-primary side locally finish) the same task;
// because completions flow through the total order, every node converges
// on the same first-completer for every task, and duplicate completions
// are counted, not double-applied — the at-least-once / agreed-winner
// semantics the load-balancing paper provides.
package loadbalance

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"repro/internal/stack"
	"repro/internal/types"
)

// Task is a unit of work identified by name.
type Task struct {
	Name string
	// Work is the simulated processing time.
	Work time.Duration
}

// Status describes a task's lifecycle at one node.
type Status int

// Task statuses.
const (
	Pending Status = iota
	Running
	Done
)

// Balancer coordinates task processing over a TO cluster. One Balancer
// instance manages all nodes of the cluster (it is a simulation-side
// object; per-node state is kept separately inside it).
type Balancer struct {
	cluster *stack.Cluster
	procs   []types.ProcID

	// Shared-by-construction state (identical at all nodes once the TO
	// stream is applied; tracked per node).
	perNode map[types.ProcID]*nodeState

	// Executed counts actual task executions (including duplicates across
	// partition sides).
	Executed map[string]int
	// Winner records the first completer per task in the total order.
	Winner map[string]types.ProcID
}

type nodeState struct {
	id      types.ProcID
	tasks   map[string]Task
	status  map[string]Status
	running map[string]bool
	// announced marks tasks this node has finished and broadcast; the
	// completion may still be in flight (or awaiting a primary view), so
	// the task is not re-run here even though its status is not yet Done.
	announced map[string]bool
}

// New attaches a balancer to a cluster. Tasks and completions ride the
// cluster's TO service; processing is driven by Pump (typically from a
// periodic simulator event).
func New(c *stack.Cluster) *Balancer {
	b := &Balancer{
		cluster:  c,
		procs:    c.Procs.Members(),
		perNode:  make(map[types.ProcID]*nodeState),
		Executed: make(map[string]int),
		Winner:   make(map[string]types.ProcID),
	}
	for _, p := range b.procs {
		b.perNode[p] = &nodeState{
			id:        p,
			tasks:     make(map[string]Task),
			status:    make(map[string]Status),
			running:   make(map[string]bool),
			announced: make(map[string]bool),
		}
	}
	c.OnDeliver(b.onDeliver)
	return b
}

// Submit announces a task at node p. Duration is encoded with the task so
// all nodes simulate the same work.
func (b *Balancer) Submit(p types.ProcID, task Task) {
	b.cluster.Bcast(p, types.Value(fmt.Sprintf("task|%d|%s", task.Work.Nanoseconds(), task.Name)))
}

func (b *Balancer) onDeliver(p types.ProcID, d stack.Delivery) {
	ns := b.perNode[p]
	s := string(d.Value)
	switch {
	case strings.HasPrefix(s, "task|"):
		rest := strings.SplitN(s[len("task|"):], "|", 2)
		if len(rest) != 2 {
			return
		}
		var workNs int64
		fmt.Sscanf(rest[0], "%d", &workNs)
		t := Task{Name: rest[1], Work: time.Duration(workNs)}
		ns.tasks[t.Name] = t
		if ns.status[t.Name] == Pending && !ns.running[t.Name] {
			b.schedule(ns)
		}
	case strings.HasPrefix(s, "done|"):
		rest := strings.SplitN(s[len("done|"):], "|", 2)
		if len(rest) != 2 {
			return
		}
		name := rest[1]
		ns.status[name] = Done
		// Every node sees the same total order, so the first completion
		// any node sights for a task is the order's first completion —
		// recording it once is globally consistent.
		if _, ok := b.Winner[name]; !ok {
			var owner int
			fmt.Sscanf(rest[0], "%d", &owner)
			b.Winner[name] = types.ProcID(owner)
		}
	}
}

// rank returns p's index within its current view, and the view size;
// ok=false when p has no view.
func (b *Balancer) rank(p types.ProcID) (int, int, bool) {
	v, ok := b.cluster.Node(p).VS().View()
	if !ok {
		return 0, 0, false
	}
	for i, m := range v.Set.Members() {
		if m == p {
			return i, v.Set.Size(), true
		}
	}
	return 0, 0, false
}

// owns reports whether p is responsible for the task under its current
// view: hash(task) mod |view| equals p's rank.
func (b *Balancer) owns(p types.ProcID, name string) bool {
	r, n, ok := b.rank(p)
	if !ok || n == 0 {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32())%n == r
}

// schedule starts (as simulator events) every pending task the node owns.
// Ownership is re-evaluated at completion time relative to the THEN
// current view, so responsibility follows membership changes.
func (b *Balancer) schedule(ns *nodeState) {
	for name, task := range ns.tasks {
		if ns.status[name] != Pending || ns.running[name] || ns.announced[name] || !b.owns(ns.id, name) {
			continue
		}
		ns.running[name] = true
		name, task := name, task
		b.cluster.Sim.After(task.Work, func() {
			ns.running[name] = false
			if ns.status[name] == Done {
				return // someone else finished while we worked
			}
			if !b.owns(ns.id, name) {
				return // view changed; no longer ours
			}
			b.Executed[name]++
			ns.announced[name] = true
			// Announce completion through the total order. Delivery (which
			// requires a primary view) marks it Done everywhere.
			b.cluster.Bcast(ns.id, types.Value(fmt.Sprintf("done|%d|%s", int(ns.id), name)))
		})
	}
}

// Pump re-evaluates ownership at every node (call after view changes or
// periodically).
func (b *Balancer) Pump() {
	for _, p := range b.procs {
		b.schedule(b.perNode[p])
	}
}

// StatusAt returns the task's status at node p.
func (b *Balancer) StatusAt(p types.ProcID, name string) Status {
	return b.perNode[p].status[name]
}

// DoneCount returns how many tasks node p has seen completed.
func (b *Balancer) DoneCount(p types.ProcID) int {
	n := 0
	for _, st := range b.perNode[p].status {
		if st == Done {
			n++
		}
	}
	return n
}

// AllDone reports whether every submitted task is Done at every node.
func (b *Balancer) AllDone() bool {
	for _, p := range b.procs {
		ns := b.perNode[p]
		for name := range ns.tasks {
			if ns.status[name] != Done {
				return false
			}
		}
	}
	return true
}
