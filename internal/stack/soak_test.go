package stack

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/failures"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestSoakRandomFaults is the long randomized end-to-end burn-in: many
// seeds, continuous traffic, and an adversarial fault schedule (partitions,
// crashes, ugly links, heals) over tens of simulated seconds, with full VS
// and TO trace conformance checked on every run. Gated behind -short.
func TestSoakRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			soakRun(t, seed)
		})
	}
}

func soakRun(t *testing.T, seed int64) {
	n := 3 + int(seed)%4 // 3..6 nodes
	wire := seed%2 == 0  // alternate wire mode for coverage
	c := NewCluster(Options{Seed: seed, N: n, Delta: time.Millisecond, Wire: wire})
	rng := rand.New(rand.NewSource(seed * 101))

	// Traffic: a value every 20–60ms from a random node, until the chaos
	// window closes (the tail must be quiet for the completeness check).
	const chaosEnd = 12 * time.Second
	msgs := 0
	var load func()
	load = func() {
		if c.Sim.Now() > sim.Time(chaosEnd) {
			return
		}
		defer c.Sim.After(time.Duration(20+rng.Intn(40))*time.Millisecond, load)
		msgs++
		c.Bcast(types.ProcID(rng.Intn(n)), types.Value(fmt.Sprintf("s%d", msgs)))
	}
	c.Sim.After(10*time.Millisecond, load)

	// Fault schedule: every 200–500ms, one of partition / crash / ugly /
	// heal.
	var chaos func()
	chaos = func() {
		if c.Sim.Now() > sim.Time(chaosEnd) {
			return
		}
		defer c.Sim.After(time.Duration(200+rng.Intn(300))*time.Millisecond, chaos)
		switch rng.Intn(4) {
		case 0:
			cut := 1 + rng.Intn(n-1)
			perm := rng.Perm(n)
			var left, right []types.ProcID
			for i, idx := range perm {
				if i < cut {
					left = append(left, types.ProcID(idx))
				} else {
					right = append(right, types.ProcID(idx))
				}
			}
			c.Oracle.Partition(c.Procs, types.NewProcSet(left...), types.NewProcSet(right...))
		case 1:
			p := types.ProcID(rng.Intn(n))
			c.Oracle.SetProc(p, failures.Bad)
			for _, q := range c.Procs.Members() {
				if q != p {
					c.Oracle.SetChannel(p, q, failures.Bad)
					c.Oracle.SetChannel(q, p, failures.Bad)
				}
			}
		case 2:
			for i := 0; i < 4; i++ {
				a, b := types.ProcID(rng.Intn(n)), types.ProcID(rng.Intn(n))
				if a != b {
					c.Oracle.SetChannel(a, b, failures.Ugly)
				}
			}
		case 3:
			c.Oracle.Heal(c.Procs)
		}
	}
	c.Sim.After(150*time.Millisecond, chaos)

	// Final heal and a long quiet tail so the run ends settled.
	c.Sim.After(chaosEnd+time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(18 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// Full conformance of both layers.
	vck := check.NewVSChecker(c.Procs, c.Procs)
	tck := check.NewTOChecker()
	for _, e := range c.Log.Events {
		var err error
		switch e.Kind {
		case props.VSNewview:
			err = vck.Newview(e.View, e.P)
		case props.VSGpsnd:
			err = vck.Gpsnd(e.Msg)
		case props.VSGprcv:
			err = vck.Gprcv(e.Msg, e.P)
		case props.VSSafe:
			err = vck.Safe(e.Msg, e.P)
		case props.TOBcast:
			tck.Bcast(e.Value, e.P)
		case props.TOBrcv:
			err = tck.Brcv(e.Value, e.From, e.P)
		}
		if err != nil {
			t.Fatalf("conformance violation (wire=%t): %v\nevent: %v", wire, err, e)
		}
	}
	// After the final heal everything ever submitted is delivered
	// everywhere (TO-property clause b over the whole history).
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != msgs {
			t.Errorf("%v delivered %d of %d after the final heal", p, got, msgs)
		}
	}
	t.Logf("soak seed %d: n=%d wire=%t msgs=%d VS events=%d", seed, n, wire, msgs, vck.Events())
}
