package stack

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// TestOneRoundMembershipEndToEnd: the footnote-7 one-round membership
// variant must provide the same TO guarantees (the VS interface is
// unchanged); only stabilization timing differs.
func TestOneRoundMembershipEndToEnd(t *testing.T) {
	c := NewCluster(Options{Seed: 33, N: 4, Delta: time.Millisecond, OneRound: true})
	c.Sim.After(30*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3))
	})
	for i := 0; i < 6; i++ {
		i := i
		c.Sim.After(time.Duration(10+30*i)*time.Millisecond, func() {
			c.Bcast(types.ProcID(i%3), types.Value(fmt.Sprintf("o%d", i)))
		})
	}
	c.Sim.After(500*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != 6 {
			t.Errorf("%v delivered %d of 6", p, got)
		}
	}
}
