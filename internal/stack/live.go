package stack

import (
	"io"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/vsimpl"
)

// LiveOptions configures one processor's endpoint for live deployment:
// the daemon runs exactly one Node of the cluster, over a real transport,
// on a simulator that the caller paces against the wall clock
// (internal/runtime style). Faults are real — process kills, severed
// sockets — so the failure oracle stays all-good and the WAL mirrors to a
// real file for crash recovery across process restarts.
type LiveOptions struct {
	// Self is this processor; Universe the full cluster; P0 the initial
	// view's membership.
	Self     types.ProcID
	Universe types.ProcSet
	P0       types.ProcSet
	// Delta is the paper's δ the protocol timers are derived from. It must
	// be the same at every node and should generously cover real network
	// latency plus pacer granularity (localhost: a few ms).
	Delta time.Duration
	// Sim is the caller-paced simulator all protocol events run on.
	Sim *sim.Sim
	// Transport carries packets to peers; the caller owns its lifecycle
	// and must deliver inbound packets on the simulator's goroutine.
	Transport transport.Transport
	// WALData is the content of the node's WAL file from prior
	// incarnations (nil or empty for a first boot). When non-empty the
	// node boots through the amnesia-recovery path: state restored from a
	// replay, a fresh incarnation above every durable floor.
	WALData []byte
	// WALMirror receives every newly durable WAL byte, in order —
	// normally the same file WALData was read from, opened for append.
	// With CheckpointBytes set it must also implement
	// storage.MirrorTruncator, so compaction can discard the file's
	// prefix.
	WALMirror io.Writer
	// WALData must already have any torn tail removed (the caller
	// truncates the file at Replay's TruncatedAt before booting): new
	// records are appended at the physical end of the file, and a replay
	// only reads past a tear's offset if the tear is gone.
	//
	// CheckpointBytes arms WAL snapshot/compaction exactly as
	// Options.CheckpointBytes does in simulation. 0 disables.
	CheckpointBytes int
	// MaxPendingBcasts bounds the node's accepted-but-undelivered
	// submission backlog, exactly as Options.MaxPendingBcasts does in
	// simulation: TryBcast rejects past the bound. 0 disables.
	MaxPendingBcasts int
	// GroupCommit, CommitWindow, DeliverPipeline and EagerTokenRounds
	// mirror the Options fields of the same names: WAL group commit,
	// delivery-record pipelining, and eager token rounds on the live
	// daemon's endpoint.
	GroupCommit      bool
	CommitWindow     time.Duration
	DeliverPipeline  int
	EagerTokenRounds bool
	// Quorums defaults to majorities of Universe.
	Quorums types.QuorumSystem
	// Log, when non-nil, replaces the node's fresh trace log — set its
	// Sink to stream events to disk. Obs enables instrumentation.
	Log *props.Log
	Obs *obs.Registry
	// OnDeliver observes every TO delivery at this node, in order.
	OnDeliver func(Delivery)
}

// NewLiveNode builds and starts a single processor's full TO stack (VS
// implementation, VStoTO, write-ahead recovery log) for live deployment.
// The returned Node is the same type the simulated Cluster hands out, so
// everything layered on Node (Bcast, Deliveries, WAL inspection) works
// unchanged. The endpoint becomes active only as the caller's pacer runs
// the simulator; nothing happens synchronously here beyond scheduling.
func NewLiveNode(opts LiveOptions) *Node {
	if opts.Delta <= 0 {
		opts.Delta = time.Millisecond
	}
	s := opts.Sim
	opts.Obs.SetClock(s.Now)
	qs := opts.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: opts.Universe}
	}
	cfg := vsimpl.DefaultConfig(opts.Delta, opts.Universe.Size())
	cfg.EagerRelaunch = opts.EagerTokenRounds
	cfg.Obs = opts.Obs
	lg := opts.Log
	if lg == nil {
		lg = &props.Log{}
	}
	c := &Cluster{
		Sim: s,
		// All-good oracle: in live mode faults are physical (killed
		// processes, closed sockets), not injected into the stack.
		Oracle:     failures.NewOracle(s.Now),
		Log:        lg,
		Procs:      opts.Universe,
		Cfg:        cfg,
		Obs:        opts.Obs,
		tr:          opts.Transport,
		qs:          qs,
		maxPending:  opts.MaxPendingBcasts,
		deliverPipe: pipeDepth(opts.DeliverPipeline),
		nodes:       make(map[types.ProcID]*Node, 1),
	}
	c.initMetrics(opts.Obs)
	dev := storage.New(s, 0)
	dev.Mirror = opts.WALMirror
	// The device starts empty but logically continues the WAL file: its
	// bytes live at logical offsets after the prior incarnations' records.
	dev.SetBase(len(opts.WALData))
	n := newNode(c, opts.Self, opts.P0, dev)
	if opts.GroupCommit {
		n.wal.SetGroupCommit(opts.CommitWindow)
	}
	n.setCheckpointPolicy(opts.CheckpointBytes)
	if opts.OnDeliver != nil {
		n.onRcv = append(n.onRcv, opts.OnDeliver)
	}

	if len(opts.WALData) == 0 {
		// First boot: seal the initial durable state (if inside the
		// initial view) and come up fresh.
		if opts.P0.Contains(opts.Self) {
			n.sealInitialState(opts.P0)
		}
		n.startFresh(opts.P0)
		n.vs.Start()
		return n
	}

	// Restart: the previous incarnation of this process died (crash,
	// SIGKILL, orderly stop — indistinguishable, and treated exactly like
	// the simulated amnesia crash). Rebuild from the WAL file and rejoin
	// through the ordinary membership machinery, one incarnation up.
	snap := recovery.Replay(opts.WALData)
	n.lastReplay = snap
	n.recoveries++
	c.m.recoveries.Inc()
	c.m.replayRecords.Add(int64(snap.Records))
	c.m.replayBytes.Add(int64(len(opts.WALData)))
	n.restoreProc(snap)
	// The file's offsets are the log's logical offsets (logical 0 = file
	// start at this boot).
	n.wal.Resync(len(opts.WALData), snap.CheckpointAt, snap.PrevCheckpointAt)
	inc := snap.Incarnations + 1
	n.waPending++
	n.wal.Recovered(inc, func() {
		n.waPending--
		n.startRecovered(snap, inc)
	})
	return n
}
