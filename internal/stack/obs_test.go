package stack

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestObsEndToEnd runs a small cluster through a partition-and-heal cycle
// with observability enabled and checks that every layer reported: the
// per-layer counters are live, the latency histograms hold samples, and
// the tracer captured the fault and view-change incidents.
func TestObsEndToEnd(t *testing.T) {
	reg := obs.New()
	reg.EnableTrace(1024)
	c := NewCluster(Options{Seed: 11, N: 4, Delta: time.Millisecond, Obs: reg})
	for i := 0; i < 5; i++ {
		i := i
		c.Sim.After(time.Duration(10+i*7)*time.Millisecond, func() {
			for _, p := range c.Procs.Members() {
				c.Bcast(p, types.Value(fmt.Sprintf("v%d-%v", i, p)))
			}
		})
	}
	// One partition/heal so formations, timeouts and fault traces fire.
	c.Sim.At(sim.Time(60*time.Millisecond), func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3))
	})
	c.Sim.At(sim.Time(120*time.Millisecond), func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"net.sent", "net.delivered",
		"mb.initiated", "mb.formed", "mb.installed",
		"vs.token_launches", "vs.token_hops", "vs.installs",
		"vstoto.labels", "vstoto.confirms", "vstoto.summaries", "vstoto.establishments",
		"wal.records", "wal.bytes", "storage.writes",
		"to.bcasts", "to.deliveries",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	for _, name := range []string{
		"vs.token_round", "mb.formation_latency",
		"to.deliver_latency", "vstoto.label_to_confirm", "vstoto.confirm_to_release",
		"stack.install_gate_wait",
	} {
		h := snap.Histograms[name]
		if h.Count <= 0 {
			t.Errorf("histogram %s has no samples", name)
		}
		if h.MinNS < 0 || h.P50NS > h.MaxNS {
			t.Errorf("histogram %s inconsistent: %+v", name, h)
		}
	}
	if snap.Counters["to.deliveries"] != int64(c.TotalDeliveries()) {
		t.Errorf("to.deliveries = %d, want %d", snap.Counters["to.deliveries"], c.TotalDeliveries())
	}
	if g := snap.Gauges["vstoto.order_len"]; g <= 0 {
		t.Errorf("vstoto.order_len gauge = %d, want > 0", g)
	}
	events := reg.Tracer().Events()
	kinds := make(map[string]int)
	for _, e := range events {
		kinds[e.Layer+"."+e.Kind]++
	}
	for _, k := range []string{"fault.channel", "vs.newview", "mb.initiate", "mb.install"} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %s events (got %v)", k, kinds)
		}
	}
}

// TestObsCrashRecoveryCounters pins the crash/recovery instrumentation: an
// amnesia crash and rejoin bump stack.crashes/recoveries, the replay
// counters, and leave crash/recover events in the trace.
func TestObsCrashRecoveryCounters(t *testing.T) {
	reg := obs.New()
	reg.EnableTrace(0)
	c := NewCluster(Options{Seed: 7, N: 3, Delta: time.Millisecond,
		StorageLatency: time.Millisecond / 4, Obs: reg})
	for i := 0; i < 4; i++ {
		i := i
		c.Sim.After(time.Duration(5+i*5)*time.Millisecond, func() {
			c.Bcast(0, types.Value(fmt.Sprintf("v%d", i)))
		})
	}
	c.Sim.At(sim.Time(50*time.Millisecond), func() { c.Oracle.SetProc(2, failures.Amnesia) })
	c.Sim.At(sim.Time(100*time.Millisecond), func() { c.Oracle.SetProc(2, failures.Good) })
	if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["stack.crashes"] != 1 || snap.Counters["stack.recoveries"] != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1",
			snap.Counters["stack.crashes"], snap.Counters["stack.recoveries"])
	}
	if snap.Counters["recovery.replay_records"] <= 0 || snap.Counters["recovery.replay_bytes"] <= 0 {
		t.Fatalf("replay counters empty: %v", snap.Counters)
	}
	if snap.Counters["storage.drops"] != 1 {
		t.Errorf("storage.drops = %d, want 1", snap.Counters["storage.drops"])
	}
	var sawCrash, sawRecover bool
	for _, e := range reg.Tracer().Events() {
		if e.Layer == "stack" && e.Kind == "crash" && e.P == 2 {
			sawCrash = true
		}
		if e.Layer == "stack" && e.Kind == "recover" && e.P == 2 {
			sawRecover = true
		}
	}
	if !sawCrash || !sawRecover {
		t.Fatalf("trace missing crash/recover events (crash=%v recover=%v)", sawCrash, sawRecover)
	}
}
