package stack

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// runScenario drives a fixed partition/heal scenario and returns the
// delivery sequence observed at node 0.
func runScenario(t *testing.T, wire bool) []Delivery {
	t.Helper()
	c := NewCluster(Options{Seed: 15, N: 5, Delta: time.Millisecond, Wire: wire})
	c.Sim.After(30*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3, 4))
	})
	for i := 0; i < 6; i++ {
		i := i
		c.Sim.After(time.Duration(10+20*i)*time.Millisecond, func() {
			c.Bcast(types.ProcID(i%5), types.Value(fmt.Sprintf("w%d", i)))
		})
	}
	c.Sim.After(400*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)
	return c.Deliveries(0)
}

// TestWireModeMatchesInMemoryMode: serializing every payload through the
// binary codec at each network hop must not change behavior at all — the
// same seed yields the identical delivery sequence. This proves both that
// the codec is faithful and that the protocols never rely on shared
// in-memory state across a hop.
func TestWireModeMatchesInMemoryMode(t *testing.T) {
	mem := runScenario(t, false)
	wire := runScenario(t, true)
	if len(mem) != len(wire) {
		t.Fatalf("delivery counts differ: %d (memory) vs %d (wire)", len(mem), len(wire))
	}
	if len(mem) != 6 {
		t.Fatalf("scenario delivered %d of 6 values", len(mem))
	}
	for i := range mem {
		if mem[i].Value != wire[i].Value || mem[i].From != wire[i].From || mem[i].Time != wire[i].Time {
			t.Fatalf("deliveries diverge at %d: %+v vs %+v", i, mem[i], wire[i])
		}
	}
}
