package stack

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

// toConformance replays the recorded TO events through the TO-machine
// trace checker.
func toConformance(t *testing.T, log *props.Log) *check.TOChecker {
	t.Helper()
	ck := check.NewTOChecker()
	for _, e := range log.Events {
		switch e.Kind {
		case props.TOBcast:
			ck.Bcast(e.Value, e.P)
		case props.TOBrcv:
			if err := ck.Brcv(e.Value, e.From, e.P); err != nil {
				t.Fatalf("TO conformance: %v\nevent: %v", err, e)
			}
		}
	}
	return ck
}

// TestStableTotalOrder: with everyone good, values submitted at different
// nodes are delivered to every node in one common total order, respecting
// per-sender submission order.
func TestStableTotalOrder(t *testing.T) {
	c := NewCluster(Options{Seed: 3, N: 4, Delta: time.Millisecond})
	for i := 0; i < 5; i++ {
		i := i
		c.Sim.After(time.Duration(10+i*7)*time.Millisecond, func() {
			for _, p := range c.Procs.Members() {
				c.Bcast(p, types.Value(fmt.Sprintf("v%d-%v", i, p)))
			}
		})
	}
	if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ck := toConformance(t, c.Log)
	want := 5 * c.Procs.Size()
	if got := ck.OrderLen(); got != want {
		t.Fatalf("total order has %d entries, want %d", got, want)
	}
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != want {
			t.Errorf("%v delivered %d values, want %d", p, got, want)
		}
	}
	// All nodes saw the identical sequence.
	ref := c.Deliveries(c.Procs.Members()[0])
	for _, p := range c.Procs.Members()[1:] {
		ds := c.Deliveries(p)
		for i := range ref {
			if ds[i].Value != ref[i].Value || ds[i].From != ref[i].From {
				t.Fatalf("%v diverges at %d: %v vs %v", p, i, ds[i], ref[i])
			}
		}
	}
}

// TestPartitionMinorityStalls: in a partition, the quorum side keeps
// confirming while the minority side delivers nothing new; after healing,
// the minority catches up with the identical order (no divergence).
func TestPartitionMinorityStalls(t *testing.T) {
	c := NewCluster(Options{Seed: 5, N: 5, Delta: time.Millisecond})
	majority := types.NewProcSet(0, 1, 2)
	minority := types.NewProcSet(3, 4)

	c.Sim.After(30*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, majority, minority)
	})
	// Both sides submit during the partition.
	c.Sim.After(150*time.Millisecond, func() {
		c.Bcast(0, "from-majority")
		c.Bcast(3, "from-minority")
	})
	var majDelivered, minDelivered int
	c.Sim.After(600*time.Millisecond, func() {
		majDelivered = len(c.Deliveries(0))
		minDelivered = len(c.Deliveries(3))
	})
	var heal sim.Time
	c.Sim.After(700*time.Millisecond, func() {
		c.Oracle.Heal(c.Procs)
		heal = c.Sim.Now()
	})
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)

	if majDelivered == 0 {
		t.Errorf("majority side delivered nothing during the partition")
	}
	if minDelivered != 0 {
		t.Errorf("minority side delivered %d values during the partition; want 0", minDelivered)
	}
	_ = heal
	// After healing, everyone has both values, in the same order.
	for _, p := range c.Procs.Members() {
		ds := c.Deliveries(p)
		if len(ds) != 2 {
			t.Fatalf("%v delivered %d values after heal, want 2", p, len(ds))
		}
	}
	first := c.Deliveries(0)[0].Value
	for _, p := range c.Procs.Members() {
		if c.Deliveries(p)[0].Value != first {
			t.Fatalf("order diverged after heal")
		}
	}
}

// TestTOPropertyAfterPartition is the executable Theorem 7.2: after the
// system stabilizes to an isolated quorum component Q, the TO service
// satisfies TO-property(b+d, d, Q) with the Section 8 analytic parameters.
func TestTOPropertyAfterPartition(t *testing.T) {
	const n = 5
	delta := time.Millisecond
	c := NewCluster(Options{Seed: 9, N: n, Delta: delta})
	q := types.NewProcSet(0, 1, 2)

	var cut sim.Time
	c.Sim.After(40*time.Millisecond, func() {
		c.Oracle.Isolate(q, c.Procs)
		cut = c.Sim.Now()
	})
	// Traffic from inside Q both before and after stabilization.
	c.Sim.After(20*time.Millisecond, func() { c.Bcast(1, "pre-cut") })
	for i := 0; i < 8; i++ {
		i := i
		c.Sim.After(time.Duration(100+20*i)*time.Millisecond, func() {
			c.Bcast(types.ProcID(i%3), types.Value(fmt.Sprintf("post-%d", i)))
		})
	}
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)

	b := c.Cfg.AnalyticB(q.Size())
	d := c.Cfg.AnalyticD(q.Size())
	if err := props.CheckVSProperty(c.Log, q, cut, b, d); err != nil {
		t.Errorf("VS-property(b,d,Q) failed: %v", err)
	}
	// Theorem 7.2: TO(b+d, d, Q).
	if err := props.CheckTOProperty(c.Log, q, cut, b+d, d); err != nil {
		t.Errorf("TO-property(b+d,d,Q) failed: %v", err)
	}
	if m := props.MeasureTO(c.Log, q, cut, b+d); m.ValuesMeasured < 9 {
		t.Errorf("only %d values entered the TO measurement; want ≥ 9 (vacuity guard)", m.ValuesMeasured)
	}
}

// TestNonQuorumUniverseNeverConfirms: with a quorum system nothing can
// satisfy, no value is ever delivered (only primary views confirm).
func TestNonQuorumUniverseNeverConfirms(t *testing.T) {
	full := types.RangeProcSet(3)
	qs, err := types.NewExplicitQuorums(types.NewProcSet(0, 1, 2, 3)) // unattainable: p3 doesn't exist
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(Options{Seed: 7, N: 3, Delta: time.Millisecond, Quorums: qs})
	c.Sim.After(10*time.Millisecond, func() { c.Bcast(0, "stuck") })
	if err := c.Sim.Run(sim.Time(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for _, p := range full.Members() {
		if got := len(c.Deliveries(p)); got != 0 {
			t.Errorf("%v delivered %d values without any primary view", p, got)
		}
	}
}
