package stack

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/types"
)

// batchedOpts is the full batched hot path: WAL group commit, pipelined
// delivery records, eager token rounds.
func batchedOpts(seed int64, n int, lambda time.Duration) Options {
	return Options{
		Seed: seed, N: n, Delta: time.Millisecond, StorageLatency: lambda,
		GroupCommit: true, DeliverPipeline: 64, EagerTokenRounds: true,
	}
}

// TestGroupCommitMatchesLegacyOrder: the batched stack must deliver the
// byte-identical (From, Value) sequence the legacy lock-step stack
// delivers. A single-origin workload pins the total order to the
// submission order (TO is FIFO per origin), so the two runs are
// comparable value-for-value — batching may only change the timing.
func TestGroupCommitMatchesLegacyOrder(t *testing.T) {
	const want = 15
	run := func(opts Options) ([]Delivery, sim.Time) {
		c := NewCluster(opts)
		c.Sim.After(10*time.Millisecond, func() {
			for i := 0; i < want; i++ {
				c.Bcast(0, types.Value(fmt.Sprintf("v%d", i)))
			}
		})
		for len(c.Deliveries(0)) < want || len(c.Deliveries(types.ProcID(opts.N-1))) < want {
			if err := c.Sim.RunFor(20 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if c.Sim.Now() > sim.Time(120*time.Second) {
				t.Fatal("burst never fully delivered")
			}
		}
		toConformance(t, c.Log)
		return c.Deliveries(0), c.Sim.Now()
	}

	const lambda = 2 * time.Millisecond
	legacy, slow := run(Options{Seed: 7, N: 3, Delta: time.Millisecond, StorageLatency: lambda})
	batched, fast := run(batchedOpts(7, 3, lambda))
	if len(batched) != len(legacy) {
		t.Fatalf("batched delivered %d, legacy %d", len(batched), len(legacy))
	}
	for i := range legacy {
		if batched[i].Value != legacy[i].Value || batched[i].From != legacy[i].From {
			t.Fatalf("order diverges at %d: batched %v vs legacy %v", i, batched[i], legacy[i])
		}
	}
	if fast >= slow {
		t.Errorf("batched run was not faster: %v vs %v", fast, slow)
	}
}

// TestGroupCommitCrashRecovery: an amnesia crash mid-burst with the whole
// batched hot path armed — pipelined delivery records in flight, a batch
// write possibly torn — must still rejoin through the WAL with a
// conformant total order, and the surviving nodes must deliver every
// value submitted at them.
func TestGroupCommitCrashRecovery(t *testing.T) {
	c := NewCluster(batchedOpts(11, 3, 2*time.Millisecond))
	victim := types.ProcID(1)
	const total = 12
	// Submit only at the nodes that stay up: values buffered at the
	// victim would die with its memory, which is legal but not what this
	// test measures.
	for i := 0; i < total; i++ {
		i := i
		c.Sim.After(time.Duration(10+i*3)*time.Millisecond, func() {
			c.Bcast(types.ProcID((i%2)*2), types.Value(fmt.Sprintf("v%d", i)))
		})
	}
	// Crash while the burst (and its pipelined WAL writes) is in full
	// swing, heal shortly after.
	c.Sim.At(sim.Time(25*time.Millisecond), func() { c.Oracle.SetProc(victim, failures.Amnesia) })
	c.Sim.At(sim.Time(60*time.Millisecond), func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// The conformance checker is the real assertion: every node's
	// delivery sequence — including the victim's across incarnations —
	// embeds in one common total order.
	toConformance(t, c.Log)
	if c.Node(victim).Recoveries() < 1 {
		t.Fatal("victim never recovered")
	}
	for _, p := range []types.ProcID{0, 2} {
		if got := len(c.Deliveries(p)); got != total {
			t.Fatalf("node %v delivered %d, want %d", p, got, total)
		}
	}
	ref := c.Deliveries(0)
	other := c.Deliveries(2)
	for i := range ref {
		if other[i].Value != ref[i].Value || other[i].From != ref[i].From {
			t.Fatalf("survivors diverge at %d: %v vs %v", i, other[i], ref[i])
		}
	}
}
