package stack

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestUglyLinksStillSafe: degrading links to ugly (lossy, slow) may stall
// progress and churn views, but can never violate the total order.
func TestUglyLinksStillSafe(t *testing.T) {
	t.Logf("seed 21")
	c := NewCluster(Options{Seed: 21, N: 4, Delta: time.Millisecond})
	rng := rand.New(rand.NewSource(21))
	c.Sim.After(20*time.Millisecond, func() {
		for i := 0; i < 6; i++ {
			from := types.ProcID(rng.Intn(4))
			to := types.ProcID(rng.Intn(4))
			if from != to {
				c.Oracle.SetChannel(from, to, failures.Ugly)
			}
		}
	})
	for i := 0; i < 10; i++ {
		i := i
		c.Sim.After(time.Duration(10+15*i)*time.Millisecond, func() {
			c.Bcast(types.ProcID(i%4), types.Value(fmt.Sprintf("u%d", i)))
		})
	}
	c.Sim.After(800*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	ck := toConformance(t, c.Log)
	// After healing and a quiet tail, everything is delivered everywhere.
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != 10 {
			t.Errorf("%v delivered %d of 10 after heal", p, got)
		}
	}
	if ck.OrderLen() != 10 {
		t.Errorf("order has %d entries", ck.OrderLen())
	}
}

// TestRepeatedPartitionCycles: five partition/heal cycles with traffic in
// each epoch; order stays consistent and everything converges at the end.
func TestRepeatedPartitionCycles(t *testing.T) {
	c := NewCluster(Options{Seed: 23, N: 5, Delta: time.Millisecond})
	splits := [][2]types.ProcSet{
		{types.NewProcSet(0, 1, 2), types.NewProcSet(3, 4)},
		{types.NewProcSet(0, 4), types.NewProcSet(1, 2, 3)},
		{types.NewProcSet(2, 3, 4), types.NewProcSet(0, 1)},
		{types.NewProcSet(0, 2, 4), types.NewProcSet(1, 3)},
		{types.NewProcSet(1, 2, 3, 4), types.NewProcSet(0)},
	}
	sent := 0
	for cycle, split := range splits {
		cycle, split := cycle, split
		base := time.Duration(cycle) * 400 * time.Millisecond
		c.Sim.After(base+50*time.Millisecond, func() {
			c.Oracle.Partition(c.Procs, split[0], split[1])
		})
		for i := 0; i < 3; i++ {
			i := i
			sent++
			c.Sim.After(base+time.Duration(120+40*i)*time.Millisecond, func() {
				p := split[0].Members()[i%split[0].Size()]
				c.Bcast(p, types.Value(fmt.Sprintf("c%d-%d", cycle, i)))
			})
		}
		c.Sim.After(base+300*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	}
	if err := c.Sim.Run(sim.Time(6 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)
	want := sent
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != want {
			t.Errorf("%v delivered %d of %d", p, got, want)
		}
	}
}

// TestJitterMode: random per-packet delays within (0, δ] change timing but
// never correctness.
func TestJitterMode(t *testing.T) {
	c := NewCluster(Options{Seed: 25, N: 4, Delta: time.Millisecond, Jitter: true})
	c.Sim.After(10*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, types.NewProcSet(0, 1, 2), types.NewProcSet(3))
	})
	for i := 0; i < 5; i++ {
		i := i
		c.Sim.After(time.Duration(30+20*i)*time.Millisecond, func() {
			c.Bcast(types.ProcID(i%3), types.Value(fmt.Sprintf("j%d", i)))
		})
	}
	c.Sim.After(400*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != 5 {
			t.Errorf("%v delivered %d of 5", p, got)
		}
	}
}

// TestLateJoiner: a processor outside the initial group (P0) is pulled in
// by probing and then participates fully.
func TestLateJoiner(t *testing.T) {
	c := NewCluster(Options{Seed: 27, N: 4, P0Size: 3, Delta: time.Millisecond})
	c.Sim.After(20*time.Millisecond, func() { c.Bcast(0, "before-join") })
	if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Node(3).VS().View()
	if !ok || !v.Set.Contains(3) || v.Set.Size() != 4 {
		t.Fatalf("late joiner's view: %v %t", v, ok)
	}
	// The pre-join value was recovered to the joiner through state exchange.
	if got := len(c.Deliveries(3)); got != 1 {
		t.Fatalf("late joiner delivered %d of 1", got)
	}
	// And it can broadcast.
	c.Bcast(3, "after-join")
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	toConformance(t, c.Log)
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != 2 {
			t.Errorf("%v delivered %d of 2", p, got)
		}
	}
}

// TestAllButOneCrash: with only one good processor there is no quorum;
// nothing confirms until the others recover.
func TestAllButOneCrash(t *testing.T) {
	c := NewCluster(Options{Seed: 29, N: 3, Delta: time.Millisecond})
	c.Sim.After(20*time.Millisecond, func() {
		for _, p := range []types.ProcID{1, 2} {
			c.Oracle.SetProc(p, failures.Bad)
			for _, q := range c.Procs.Members() {
				if q != p {
					c.Oracle.SetChannel(p, q, failures.Bad)
					c.Oracle.SetChannel(q, p, failures.Bad)
				}
			}
		}
	})
	c.Sim.After(100*time.Millisecond, func() { c.Bcast(0, "lonely") })
	var atRecovery int
	c.Sim.After(600*time.Millisecond, func() {
		atRecovery = len(c.Deliveries(0))
		c.Oracle.Heal(c.Procs)
	})
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if atRecovery != 0 {
		t.Errorf("lone survivor delivered %d values without a quorum", atRecovery)
	}
	toConformance(t, c.Log)
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != 1 {
			t.Errorf("%v delivered %d of 1 after recovery", p, got)
		}
	}
}

// TestVSPropertyBothSidesOfPartition evaluates VS-property for the
// non-quorum side as well: the paper's property is quorum-agnostic — even
// a minority component must converge on a view of exactly its members.
func TestVSPropertyBothSidesOfPartition(t *testing.T) {
	c := NewCluster(Options{Seed: 31, N: 5, Delta: time.Millisecond})
	minority := types.NewProcSet(3, 4)
	majority := types.NewProcSet(0, 1, 2)
	var cut sim.Time
	c.Sim.After(40*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, majority, minority)
		cut = c.Sim.Now()
	})
	if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []types.ProcSet{majority, minority} {
		m := props.MeasureVS(c.Log, q, cut)
		if !m.Converged {
			t.Errorf("component %v did not converge", q)
			continue
		}
		if b := c.Cfg.AnalyticB(q.Size()); m.LPrime > b {
			t.Errorf("component %v stabilized in %v > b %v", q, m.LPrime, b)
		}
	}
}
