package stack

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestBackpressureRejectsInMinority pins the graceful-degradation valve:
// a node cut into a minority component cannot deliver (no primary), so
// its accepted submissions pile up in pendingOwn until MaxPendingBcasts,
// past which TryBcast rejects without touching the WAL; after the heal
// every accepted value is delivered everywhere, the backlog drains, and
// submissions flow again.
func TestBackpressureRejectsInMinority(t *testing.T) {
	reg := obs.New()
	const capacity = 3
	c := NewCluster(Options{Seed: 13, N: 5, Delta: time.Millisecond,
		Obs: reg, MaxPendingBcasts: capacity})
	majority := types.NewProcSet(0, 1, 2)
	minority := types.NewProcSet(3, 4)

	c.Sim.After(30*time.Millisecond, func() {
		c.Oracle.Partition(c.Procs, majority, minority)
	})

	// Well after the minority's view reconfigures: submit past the cap.
	var accepted, rejected int
	var stalledWhenFull, primaryOnMajority bool
	var pendingAtFull int
	c.Sim.After(400*time.Millisecond, func() {
		n := c.Node(3)
		for i := 0; i < capacity+2; i++ {
			if n.TryBcast(types.Value(fmt.Sprintf("minority-%d", i))) {
				accepted++
			} else {
				rejected++
			}
		}
		stalledWhenFull = n.Stalled()
		pendingAtFull = n.PendingBcasts()
		primaryOnMajority = c.Node(0).Primary()
	})

	c.Sim.After(700*time.Millisecond, func() { c.Oracle.Heal(c.Procs) })
	// Post-heal probe: the drained node accepts again and the value makes
	// it into the total order.
	var acceptedAfterHeal bool
	c.Sim.After(2500*time.Millisecond, func() {
		acceptedAfterHeal = c.Node(3).TryBcast("post-heal")
	})
	if err := c.Sim.Run(sim.Time(5 * time.Second)); err != nil {
		t.Fatal(err)
	}

	if accepted != capacity || rejected != 2 {
		t.Fatalf("accepted %d rejected %d, want %d/%d", accepted, rejected, capacity, 2)
	}
	if pendingAtFull != capacity {
		t.Errorf("pendingOwn at the cap = %d, want %d", pendingAtFull, capacity)
	}
	if !stalledWhenFull {
		t.Errorf("minority node not Stalled() while rejecting")
	}
	if !primaryOnMajority {
		t.Errorf("majority node lost Primary() — partition timing broken")
	}
	if !acceptedAfterHeal {
		t.Errorf("post-heal submission rejected: backlog never drained")
	}

	// Every accepted value (cap during the partition + 1 after the heal)
	// reaches every node; nothing rejected ever appears.
	want := capacity + 1
	for _, p := range c.Procs.Members() {
		if got := len(c.Deliveries(p)); got != want {
			t.Errorf("%v delivered %d values, want %d", p, got, want)
		}
	}
	if got := c.Node(3).PendingBcasts(); got != 0 {
		t.Errorf("pendingOwn after full drain = %d, want 0", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["to.bcast_rejected"]; got != 2 {
		t.Errorf("to.bcast_rejected = %d, want 2", got)
	}
	if got := snap.Gauges["stack.pending_bcasts"]; got < int64(capacity) {
		t.Errorf("stack.pending_bcasts high-water = %d, want >= %d", got, capacity)
	}
}

// TestPendingRecomputedAcrossRecovery pins the restart arm of the
// backlog bound: an amnesia crash wipes volatile state, and recovery
// recomputes pendingOwn from the WAL as durable submissions minus the
// own-origin durable delivered prefix — so a rebooted node neither
// inherits a phantom backlog nor forgets a real one.
func TestPendingRecomputedAcrossRecovery(t *testing.T) {
	c := NewCluster(Options{Seed: 17, N: 3, Delta: time.Millisecond,
		MaxPendingBcasts: 8})
	// Deliver a few values end to end, then crash the submitter after the
	// backlog has fully drained.
	for i := 0; i < 3; i++ {
		i := i
		c.Sim.After(time.Duration(10+7*i)*time.Millisecond, func() {
			if !c.Node(0).TryBcast(types.Value(fmt.Sprintf("v%d", i))) {
				t.Errorf("healthy submission %d rejected", i)
			}
		})
	}
	var pendingBeforeCrash = -1
	c.Sim.After(300*time.Millisecond, func() {
		pendingBeforeCrash = c.Node(0).PendingBcasts()
		c.Oracle.SetProc(0, failures.Amnesia)
	})
	c.Sim.After(400*time.Millisecond, func() { c.Oracle.SetProc(0, failures.Good) })
	var pendingAfterRecovery = -1
	c.Sim.After(900*time.Millisecond, func() {
		pendingAfterRecovery = c.Node(0).PendingBcasts()
		// The node is functional again: a fresh submission is accepted
		// and delivered cluster-wide.
		if !c.Node(0).TryBcast("post-recovery") {
			t.Errorf("post-recovery submission rejected")
		}
	})
	if err := c.Sim.Run(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if pendingBeforeCrash != 0 {
		t.Fatalf("backlog not drained before crash: %d", pendingBeforeCrash)
	}
	if pendingAfterRecovery != 0 {
		t.Errorf("pendingOwn after recovery = %d, want 0 (recomputed from WAL)", pendingAfterRecovery)
	}
	if got := len(c.Deliveries(1)); got != 4 {
		t.Errorf("node 1 delivered %d values, want 4 (3 pre-crash + post-recovery)", got)
	}
	if got := c.Node(0).PendingBcasts(); got != 0 {
		t.Errorf("pendingOwn after post-recovery delivery = %d, want 0", got)
	}
}
