// Package stack composes the VStoTO algorithm over the VS implementation
// into the paper's TO service (the dashed box of Figure 1): one TO endpoint
// per processor, each wiring a vstoto.Proc to a vsimpl.Node and running the
// algorithm's locally controlled actions eagerly — the timed model's "good
// processors take enabled steps with no time delay".
//
// Each endpoint additionally keeps a write-ahead log (internal/recovery)
// on a simulated stable-storage device, persisting every VStoTO-critical
// state change as it happens. The paper's Bad status pauses a processor
// but preserves its state; the extended Amnesia status (failures.Amnesia)
// wipes volatile state, and on the transition back to Good the endpoint is
// rebuilt from a replay of its WAL and rejoins through the ordinary
// membership protocol. Deliveries are write-ahead gated: the client sees a
// value only once its delivery record is durable, so the persisted
// delivery prefix always equals the delivered prefix exactly (the
// invariant props.CheckRejoinSafety pins).
package stack

import (
	"time"

	"repro/internal/codec"
	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/props"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// incarnationSeqSpan partitions the VS send-sequence space by incarnation:
// incarnation k issues MsgID sequence numbers in (k·2³², (k+1)·2³²], so
// identifiers never collide across amnesia restarts no matter how far the
// wiped incarnation's volatile counter had run ahead of stable storage.
const incarnationSeqSpan = 1 << 32

// Delivery is one totally ordered delivery to the client at a node.
type Delivery struct {
	From  types.ProcID
	Value types.Value
	Time  sim.Time
}

// Node is one processor's TO endpoint.
type Node struct {
	id    types.ProcID
	sim   *sim.Sim
	orc   *failures.Oracle
	c     *Cluster
	proc  *vstoto.Proc
	vs    *vsimpl.Node
	log     *props.Log
	onRcv   []func(Delivery)
	onBatch []func([]Delivery)
	// drainDepth/batchMark bracket one client-visible delivery batch: the
	// outermost drain (completion callbacks re-enter drain mid-loop) marks
	// the delivered prefix on entry and, once the pipeline quiesces, flushes
	// everything released since to the batch observers in one call — the
	// boundary the rsm layer's antichain planner cuts at.
	drainDepth int
	batchMark  int

	bcastSeq   int        // per-origin submission counter for the log
	deliveries []Delivery // everything delivered here, in order
	// pendingOwn counts this node's accepted submissions not yet delivered
	// back to it — the end-to-end TOBcast backlog TryBcast bounds. It
	// survives restarts: recovery recomputes it as the durable submission
	// count minus the own-origin entries of the durable delivered prefix.
	pendingOwn int

	// Crash-recovery state.
	wal       *recovery.WAL
	delaySeqs []int // submission seqs of proc.Delay entries, in lockstep
	// incarnation guards storage completion callbacks: a callback captured
	// under an older incarnation must not act on the rebuilt state.
	incarnation int
	// Delivery pipelining (Cluster.deliverPipe bounds the sum of the two):
	// deliverInFlight counts delivery records being written, deliverReady
	// counts records durable but not yet released. Records are written for
	// consecutive confirmed positions ahead of NextReport; the confirmed
	// prefix is stable across establishments, so a record written ahead
	// names the same label/value it will have at release time.
	deliverInFlight int
	deliverReady    int
	needsRecovery   bool
	recoveries    int
	lastReplay    *recovery.Snapshot

	// Checkpoint policy (Options.CheckpointBytes; 0 disables). waPending
	// counts write-ahead records enqueued but not yet durable — between
	// enqueue and completion the log runs ahead of memory, so a checkpoint
	// (which must equal a replay of the log prefix it lands after) is only
	// captured when the counter is zero. hasView/curView track the last
	// installed view and walInc the durable recovery-marker count, both
	// needed in the capture.
	ckptEvery   int
	ckptPending bool
	waPending   int
	hasView     bool
	curView     types.View
	walInc      int
	checkpoints int

	// Per-label timestamps for the vstoto latency histograms (allocated
	// only when the cluster's obs registry is enabled; nil otherwise).
	labelAt   map[types.Label]sim.Time
	confirmAt map[types.Label]sim.Time
}

// Cluster is a full TO service instance on a simulator: the network, the
// failure oracle, and one Node per processor.
type Cluster struct {
	Sim    *sim.Sim
	Oracle *failures.Oracle
	Net    *net.Network
	Log    *props.Log
	Procs  types.ProcSet
	Cfg    vsimpl.Config
	// Crashes records, at each amnesia crash, what the wiped processor's
	// stable storage will restore on restart — the evidence that
	// props.CheckRejoinSafety compares against the recorded trace.
	Crashes []props.CrashSnapshot
	// Obs is the cluster's observability registry (nil when disabled).
	Obs *obs.Registry

	// tr is the transport every node sends through: the simulated Network
	// in NewCluster, a real-socket transport in NewLiveNode.
	tr         transport.Transport
	qs         types.QuorumSystem
	skipReplay bool
	// maxPending bounds each node's accepted-but-undelivered submission
	// backlog (TryBcast backpressure); 0 leaves Bcast unbounded.
	maxPending int
	// deliverPipe bounds each node's delivery records in flight plus
	// durable-awaiting-release (Options.DeliverPipeline; always ≥ 1).
	deliverPipe int
	nodes       map[types.ProcID]*Node
	m          clusterMetrics
	// submitted maps each client submission to its bcast instant, for the
	// end-to-end to.deliver_latency histogram (nil when obs is disabled).
	submitted map[submitKey]sim.Time
}

// submitKey identifies one client submission across the cluster.
type submitKey struct {
	origin types.ProcID
	seq    int
}

// clusterMetrics holds the stack-level obs handles (all nil when disabled).
type clusterMetrics struct {
	bcasts        *obs.Counter
	bcastRejected *obs.Counter // TryBcast backpressure rejections
	deliveries    *obs.Counter
	crashes       *obs.Counter
	recoveries    *obs.Counter
	pendingBcasts *obs.Gauge // accepted-but-undelivered backlog (live: the one node's)
	// primary is 1 when the most recent view installation in this registry
	// was a primary view at the installing node. In live deployments the
	// registry is per-daemon, so this is exactly "this node is in a primary
	// component" — the metric behind the STALLED status.
	primary          *obs.Gauge
	replayRecords    *obs.Counter
	replayBytes      *obs.Counter
	deliverLatency   *obs.Histogram // bcast → brcv, per delivering node
	labelToConfirm   *obs.Histogram // label → confirm at the origin
	confirmToRelease *obs.Histogram // confirm → brcv at the origin
	installGateWait  *obs.Histogram // gate entry → durable commit
	tracer           *obs.Tracer
}

// Options configures NewCluster.
type Options struct {
	Seed    int64
	N       int
	P0Size  int // processors initially in the group (default: all)
	Delta   time.Duration
	Jitter  bool
	Quorums types.QuorumSystem // default: majorities of the universe
	// Pi and Mu override the derived defaults when non-zero.
	Pi, Mu time.Duration
	// Wire, when true, serializes every payload crossing the network
	// through the binary wire codec and back, so no pointer survives a
	// hop (a realism/honesty mode; slightly slower).
	Wire bool
	// CollectWait overrides the membership collection window (see
	// vsimpl.Config.CollectWait); used by the E9 ablation.
	CollectWait time.Duration
	// OneRound selects the one-round membership protocol of footnote 7
	// (see vsimpl.Config.OneRound); used by experiment E10.
	OneRound bool
	// NoTokenCompaction disables token compaction (see
	// vsimpl.Config.NoTokenCompaction); used by the E11 ablation.
	NoTokenCompaction bool
	// OnDeliver, when non-nil, observes every delivery at every node.
	OnDeliver func(p types.ProcID, d Delivery)
	// StorageLatency is the write latency of each processor's stable-
	// storage device. The default 0 makes records durable on the next
	// event at the same virtual instant, so the WAL costs no virtual
	// time; a positive latency opens the window in which an amnesia
	// crash tears the in-flight record (the torn-write chaos campaign
	// runs with λ = δ/4). Experiment E14 sweeps it.
	StorageLatency time.Duration
	// CheckpointBytes, when positive, turns on WAL snapshot/compaction:
	// once at least this many log bytes have accumulated since the last
	// checkpoint, the node appends a checkpoint record capturing its full
	// VStoTO-critical state at the next quiescent instant, and the log
	// prefix before the previous checkpoint is physically discarded when
	// the record is durable. Replay then starts from the last valid
	// checkpoint instead of folding the whole history. 0 disables (the
	// default; the WAL keeps every record forever, as before).
	CheckpointBytes int
	// MaxPendingBcasts, when positive, bounds each node's accepted-but-
	// undelivered submission backlog: TryBcast rejects (returns false)
	// while the node already holds this many of its own submissions that
	// have not yet been delivered back to it. This is the stack's
	// graceful-degradation valve: with no primary component the backlog
	// cannot drain, and without a bound a stalled node buffers client
	// values without limit. 0 (the default) leaves submission unbounded.
	MaxPendingBcasts int
	// GroupCommit turns on WAL group commit (recovery.WAL.SetGroupCommit):
	// records appended while a batch write is outstanding coalesce into one
	// covering storage write instead of serializing one λ each. The
	// simulated network mirrors the batching semantics (net.Config.Coalesce)
	// so sim and live stay behaviorally aligned.
	GroupCommit bool
	// CommitWindow, with GroupCommit, additionally delays the first write
	// of a batch on an idle device to let a larger batch form — latency
	// traded for throughput. 0 is pure pipelined coalescing.
	CommitWindow time.Duration
	// DeliverPipeline bounds how many delivery records a node keeps in
	// flight ahead of the release point. The default 0 means 1: the legacy
	// lock-step path (write one record, wait for durability, release,
	// repeat). Depths > 1 overlap the storage latency of consecutive
	// deliveries; release order and write-ahead gating are unchanged.
	DeliverPipeline int
	// EagerTokenRounds relaunches the VS token immediately when work is
	// queued instead of pacing rounds at π (vsimpl.Config.EagerRelaunch),
	// so a burst of TOBcasts is carried by back-to-back rounds.
	EagerTokenRounds bool
	// SkipRecoveryReplay is a test-only hook: a processor recovering from
	// an amnesia crash is rebuilt from an empty snapshot instead of a
	// replay of its WAL. It exists so the chaos tests can verify that the
	// harness catches (and shrinks to) a broken recovery path. Never set
	// it otherwise.
	SkipRecoveryReplay bool
	// Obs, when non-nil, receives metrics and trace events from every
	// layer of the stack (the registry's clock is bound to the cluster's
	// simulated clock). Nil disables all instrumentation at zero cost.
	Obs *obs.Registry
}

// NewCluster builds and starts a TO service instance.
func NewCluster(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("stack: N must be positive")
	}
	if opts.Delta <= 0 {
		opts.Delta = time.Millisecond
	}
	if opts.P0Size <= 0 || opts.P0Size > opts.N {
		opts.P0Size = opts.N
	}
	s := sim.New(opts.Seed)
	opts.Obs.SetClock(s.Now)
	oracle := failures.NewOracle(s.Now)
	netCfg := net.Config{Delta: opts.Delta, Jitter: opts.Jitter, UglyLossProb: 0.5, UglyMaxDelayFactor: 10, Obs: opts.Obs, Coalesce: opts.GroupCommit}
	if opts.Wire {
		netCfg.Transcode = codec.Roundtrip
		if opts.Obs != nil {
			// In wire mode every payload is encodable, so the net.bytes
			// counter can account real encoded sizes.
			netCfg.PayloadBytes = func(p any) int {
				b, err := codec.Encode(p)
				if err != nil {
					return 0
				}
				return len(b)
			}
		}
	}
	nw := net.New(s, oracle, netCfg)
	procs := types.RangeProcSet(opts.N)
	p0 := types.NewProcSet(procs.Members()[:opts.P0Size]...)
	qs := opts.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: procs}
	}
	cfg := vsimpl.DefaultConfig(opts.Delta, opts.N)
	// View installations are gated on a λ-latency WAL write, so the
	// patience windows that assume immediate installs must wait λ longer
	// (see vsimpl.Config.InstallSlack).
	cfg.InstallSlack = opts.StorageLatency
	if opts.Pi > 0 {
		cfg.Pi = opts.Pi
	}
	if opts.Mu > 0 {
		cfg.Mu = opts.Mu
	}
	if opts.CollectWait > 0 {
		cfg.CollectWait = opts.CollectWait
	}
	cfg.OneRound = opts.OneRound
	cfg.NoTokenCompaction = opts.NoTokenCompaction
	cfg.EagerRelaunch = opts.EagerTokenRounds
	cfg.Obs = opts.Obs
	c := &Cluster{
		Sim: s, Oracle: oracle, Net: nw,
		Log:        &props.Log{},
		Procs:      procs,
		Cfg:        cfg,
		Obs:        opts.Obs,
		tr:         nw,
		qs:         qs,
		skipReplay:  opts.SkipRecoveryReplay,
		maxPending:  opts.MaxPendingBcasts,
		deliverPipe: pipeDepth(opts.DeliverPipeline),
		nodes:       make(map[types.ProcID]*Node, opts.N),
	}
	c.initMetrics(opts.Obs)
	for _, p := range procs.Members() {
		node := newNode(c, p, p0, storage.New(s, opts.StorageLatency))
		if opts.GroupCommit {
			node.wal.SetGroupCommit(opts.CommitWindow)
		}
		node.setCheckpointPolicy(opts.CheckpointBytes)
		if p0.Contains(p) {
			node.sealInitialState(p0)
		}
		if opts.OnDeliver != nil {
			p := p
			node.onRcv = append(node.onRcv, func(d Delivery) { opts.OnDeliver(p, d) })
		}
		node.startFresh(p0)
	}
	for _, p := range procs.Members() {
		c.nodes[p].vs.Start()
	}
	// An amnesia event wipes the processor's volatile state on the spot; a
	// processor turning good resumes its enabled steps, rebuilding itself
	// from stable storage first if the outage was an amnesia crash.
	oracle.Watch(func(e failures.Event) {
		if c.m.tracer != nil {
			if e.Channel {
				c.m.tracer.Emit("fault", "channel", e.Pair.From, e.Pair.To, int64(e.Status), e.Status.String())
			} else {
				c.m.tracer.Emit("fault", "proc", e.Proc, obs.NoPeer, int64(e.Status), e.Status.String())
			}
		}
		if e.Channel {
			return
		}
		node, ok := c.nodes[e.Proc]
		if !ok {
			return
		}
		switch e.Status {
		case failures.Amnesia:
			node.crash()
		case failures.Good:
			if node.needsRecovery {
				node.recover()
			}
			s.Defer(node.drain)
		}
	})
	return c
}

// pipeDepth normalizes a DeliverPipeline option: anything below 1 is the
// legacy lock-step depth of one.
func pipeDepth(d int) int {
	if d < 1 {
		return 1
	}
	return d
}

// initMetrics binds the cluster-level obs handles (no-op on nil).
func (c *Cluster) initMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.submitted = make(map[submitKey]sim.Time)
	c.m = clusterMetrics{
		bcasts:           reg.Counter("to.bcasts"),
		bcastRejected:    reg.Counter("to.bcast_rejected"),
		deliveries:       reg.Counter("to.deliveries"),
		crashes:          reg.Counter("stack.crashes"),
		recoveries:       reg.Counter("stack.recoveries"),
		pendingBcasts:    reg.Gauge("stack.pending_bcasts"),
		primary:          reg.Gauge("stack.primary"),
		replayRecords:    reg.Counter("recovery.replay_records"),
		replayBytes:      reg.Counter("recovery.replay_bytes"),
		deliverLatency:   reg.Histogram("to.deliver_latency"),
		labelToConfirm:   reg.Histogram("vstoto.label_to_confirm"),
		confirmToRelease: reg.Histogram("vstoto.confirm_to_release"),
		installGateWait:  reg.Histogram("stack.install_gate_wait"),
		tracer:           reg.Tracer(),
	}
}

// newNode builds the per-processor endpoint shell shared by the simulated
// cluster and the live daemon: the VStoTO automaton, the WAL on the given
// device, and the instrumentation handles. The caller decides how the VS
// incarnation comes up (startFresh for a clean boot, the recovery path for
// a WAL-restored one) and whether to seal the initial durable records.
func newNode(c *Cluster, p types.ProcID, p0 types.ProcSet, dev *storage.Stable) *Node {
	node := &Node{
		id:   p,
		sim:  c.Sim,
		orc:  c.Oracle,
		c:    c,
		proc: vstoto.NewProc(p, c.qs, p0),
		log:  c.Log,
		wal:  recovery.New(dev),
	}
	node.proc.SetObs(c.Obs)
	node.wal.Instrument(c.Obs)
	if c.Obs != nil {
		node.labelAt = make(map[types.Label]sim.Time)
		node.confirmAt = make(map[types.Label]sim.Time)
	}
	c.nodes[p] = node
	return node
}

// sealInitialState makes the initial view and the empty pre-view-change
// establishment durable, so even a processor that crashes before its first
// view change restores a view floor and a high-primary of g0 rather than ⊥.
// Only processors starting inside the initial view have this state.
func (n *Node) sealInitialState(p0 types.ProcSet) {
	n.hasView = true
	n.curView = types.InitialView(p0)
	n.wal.View(n.curView, nil)
	n.wal.Establish(nil, 1, types.G0(), nil)
}

// setCheckpointPolicy arms checkpointing (every 'bytes' of log growth;
// 0 disables) and the compaction that rides on it.
func (n *Node) setCheckpointPolicy(bytes int) {
	n.ckptEvery = bytes
	n.wal.SetCompact(bytes > 0)
}

// handlers wires the VS upcalls to this endpoint.
func (n *Node) handlers() vsimpl.Handlers {
	return vsimpl.Handlers{
		Newview: n.onNewview,
		Gprcv:   n.onGprcv,
		Safe:    n.onSafe,
	}
}

// startFresh attaches a clean VS incarnation (initial state, no recovery
// floors).
func (n *Node) startFresh(p0 types.ProcSet) {
	n.vs = vsimpl.NewNode(n.id, n.c.Procs, p0, n.sim, n.c.tr, n.orc, n.c.Cfg, n.handlers())
	n.vs.Log = n.c.Log
	n.vs.SetInstallGate(n.gateInstall)
}

// Node returns the endpoint for processor p.
func (c *Cluster) Node(p types.ProcID) *Node { return c.nodes[p] }

// ApplySchedule arms a failure schedule against the running cluster: every
// event is applied to the oracle at exactly its recorded time. This is the
// chaos harness's injection point; combined with the oracle's recorded
// history it makes fault campaigns replayable byte for byte.
func (c *Cluster) ApplySchedule(s failures.Schedule) { s.ApplyAt(c.Sim, c.Oracle) }

// TotalDeliveries returns the number of deliveries summed over all nodes —
// a cheap non-vacuity signal for fault campaigns (a schedule that
// blackholes everything delivers nothing and "passes" every safety check).
func (c *Cluster) TotalDeliveries() int {
	total := 0
	for _, n := range c.nodes {
		total += len(n.deliveries)
	}
	return total
}

// OnDeliver registers an observer invoked on every delivery at every node,
// in delivery order. Observers added after deliveries have occurred see
// only subsequent ones.
func (c *Cluster) OnDeliver(fn func(p types.ProcID, d Delivery)) {
	for _, p := range c.Procs.Members() {
		p := p
		c.nodes[p].onRcv = append(c.nodes[p].onRcv, func(d Delivery) { fn(p, d) })
	}
}

// OnDeliverBatch registers an observer invoked once per released delivery
// batch at every node: all deliveries the node's outermost drain released
// in one quiescent step, in delivery order. Per-delivery OnDeliver
// observers fire first (inside the drain); the batch observer fires after
// the pipeline quiesces, which is the natural cut point for batch-aware
// appliers (internal/rsm's antichain planner). The slice aliases the
// node's delivery history — observers must not retain or mutate it.
func (c *Cluster) OnDeliverBatch(fn func(p types.ProcID, batch []Delivery)) {
	for _, p := range c.Procs.Members() {
		p := p
		c.nodes[p].onBatch = append(c.nodes[p].onBatch, func(b []Delivery) { fn(p, b) })
	}
}

// Bcast submits a client value at processor p.
func (c *Cluster) Bcast(p types.ProcID, a types.Value) { c.nodes[p].Bcast(a) }

// Deliveries returns everything delivered at p so far, in order.
func (c *Cluster) Deliveries(p types.ProcID) []Delivery { return c.nodes[p].deliveries }

// ID returns the node's processor identifier.
func (n *Node) ID() types.ProcID { return n.id }

// Proc exposes the underlying VStoTO automaton (read-only use: inspection
// in tests and experiments).
func (n *Node) Proc() *vstoto.Proc { return n.proc }

// VS exposes the underlying VS endpoint.
func (n *Node) VS() *vsimpl.Node { return n.vs }

// WAL exposes the node's write-ahead log (tests and experiments: log
// size, fault injection on the underlying device).
func (n *Node) WAL() *recovery.WAL { return n.wal }

// Recoveries returns how many amnesia restarts this node has performed.
func (n *Node) Recoveries() int { return n.recoveries }

// LastReplay returns the snapshot the most recent recovery restored from
// (nil if the node never recovered).
func (n *Node) LastReplay() *recovery.Snapshot { return n.lastReplay }

// Bcast is the client's bcast(a)_p input, ignoring backpressure: a value
// rejected by the TryBcast bound is silently dropped (legacy call sites
// and tests that never configure MaxPendingBcasts).
func (n *Node) Bcast(a types.Value) { n.TryBcast(a) }

// TryBcast is the client's bcast(a)_p input with explicit backpressure.
// It reports false — and accepts nothing — when the node's own
// accepted-but-undelivered backlog is at the configured bound (the value
// never reached the WAL, so the client may retry the identical value
// later) or when the processor is amnesiac (no client lives at a wiped
// processor). Otherwise the value becomes durable (a WAL record at the
// origin) before the submission is logged or enters the delay queue, so
// every value the trace obliges the system to deliver survives an
// amnesia crash of its origin.
func (n *Node) TryBcast(a types.Value) bool {
	if n.orc.Proc(n.id) == failures.Amnesia {
		return false
	}
	if max := n.c.maxPending; max > 0 && n.pendingOwn >= max {
		n.c.m.bcastRejected.Inc()
		return false
	}
	n.pendingOwn++
	n.c.m.pendingBcasts.Max(int64(n.pendingOwn))
	n.bcastSeq++
	seq := n.bcastSeq
	n.c.m.bcasts.Inc()
	if n.c.submitted != nil {
		// Submission instant, for the end-to-end delivery latency. Keyed by
		// origin and bcast sequence; recovery restores bcastSeq from the WAL,
		// so keys stay unique across incarnations.
		n.c.submitted[submitKey{origin: n.id, seq: seq}] = n.sim.Now()
	}
	inc := n.incarnation
	n.waPending++
	n.wal.Bcast(seq, a, func() {
		if n.incarnation != inc {
			return
		}
		n.waPending--
		if n.log != nil {
			n.log.Append(props.Event{
				T: n.sim.Now(), Kind: props.TOBcast, P: n.id, Value: a, ValueSeq: seq,
			})
		}
		n.delaySeqs = append(n.delaySeqs, seq)
		n.proc.Bcast(a)
		n.drain()
	})
	return true
}

// Deliveries returns everything delivered at this node, in order.
func (n *Node) Deliveries() []Delivery { return n.deliveries }

// DeliveredCount returns how many values this node has delivered.
func (n *Node) DeliveredCount() int { return len(n.deliveries) }

// PendingBcasts returns the node's accepted-but-undelivered submission
// backlog — the quantity TryBcast bounds.
func (n *Node) PendingBcasts() int { return n.pendingOwn }

// Primary reports whether the node's current view is a primary view: a
// quorum-contained view whose establishment completed here. Only primary
// members extend the total order, so !Primary() means new submissions
// cannot currently be delivered anywhere from this node's perspective.
func (n *Node) Primary() bool { return n.proc.Primary() }

// Stalled reports the graceful-degradation condition surfaced to clients:
// the node is not in an established primary component, so accepted
// submissions queue without delivery until a primary re-forms.
func (n *Node) Stalled() bool { return !n.proc.Primary() }

func (n *Node) onNewview(v types.View) {
	// The view record is already durable: installation is write-ahead
	// gated (see gateInstall), and this handler runs from the commit.
	n.hasView = true
	n.curView = v
	n.proc.Newview(v)
	if n.proc.Primary() {
		n.c.m.primary.Set(1)
	} else {
		n.c.m.primary.Set(0)
	}
	n.drain()
}

// gateInstall is the membership layer's installation gate (see
// membership.Former.Gate): the accepted view's record is written first,
// and the installation commits only from the record's completion. An
// amnesia crash in between tears the record and the incarnation guard
// discards the commit, so an installation is never announced without a
// durable record — the restored view floor always covers every announced
// installation, whatever the storage latency.
func (n *Node) gateInstall(v types.View, commit func()) {
	inc := n.incarnation
	entered := n.sim.Now()
	n.waPending++
	n.wal.View(v, func() {
		if n.incarnation != inc {
			return
		}
		n.waPending--
		n.c.m.installGateWait.Record(n.sim.Now().Sub(entered))
		commit()
	})
}

func (n *Node) onGprcv(from types.ProcID, payload any) {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		before := len(n.proc.Order)
		n.proc.GprcvValue(m)
		if len(n.proc.Order) > before {
			n.wal.OrderAppend(m.L, m.A, nil)
		}
	case *vstoto.Summary:
		collecting := n.proc.Status == vstoto.StatusCollect
		n.proc.GprcvSummary(from, m)
		if collecting && n.proc.Status == vstoto.StatusNormal {
			// The state exchange completed: persist the established order,
			// nextconfirm and highprimary in one record.
			n.wal.Establish(n.proc.Order, n.proc.NextConfirm, n.proc.HighPrimary, nil)
		}
	default:
		panic("stack: unexpected VS payload")
	}
	n.drain()
}

func (n *Node) onSafe(from types.ProcID, payload any) {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		n.proc.SafeValue(m)
	case *vstoto.Summary:
		n.proc.SafeSummary(from)
	default:
		panic("stack: unexpected VS payload")
	}
	n.drain()
}

// crash wipes the node's volatile state (failures.Amnesia): the VS
// incarnation is stopped for good, the storage device tears its in-flight
// write and discards its queue, and a snapshot of what a restart will
// restore is recorded for the rejoin-safety check. The node stays inert
// until the oracle turns it good again.
func (n *Node) crash() {
	n.c.m.crashes.Inc()
	n.c.m.tracer.Emit("stack", "crash", n.id, obs.NoPeer, int64(n.incarnation+1), "")
	n.incarnation++
	n.deliverInFlight = 0
	n.deliverReady = 0
	n.delaySeqs = nil
	n.needsRecovery = true
	n.waPending = 0
	n.ckptPending = false
	n.hasView = false
	n.vs.Stop()
	st := n.wal.Storage()
	st.Drop()
	snap := recovery.Replay(st.Contents())
	cs := props.CrashSnapshot{P: n.id, T: n.sim.Now()}
	for _, d := range snap.Delivered {
		cs.Persisted = append(cs.Persisted, props.PersistedDelivery{
			From: d.From, Seq: d.FromSeq, Value: d.Value,
		})
	}
	n.c.Crashes = append(n.c.Crashes, cs)
}

// recover rebuilds the node from a replay of its WAL: a fresh VStoTO
// automaton restored to the last durable establishment (extended by
// durable order appends), the persisted delivery prefix marked reported,
// durable-but-unlabeled submissions back in the delay queue, and a fresh
// VS incarnation holding no view but respecting the persisted view and
// send-sequence floors. Membership pulls it back into a view through the
// ordinary probe/timeout machinery.
func (n *Node) recover() {
	disk := n.wal.Storage().Contents()
	if n.c.skipReplay {
		disk = nil // deliberately broken: restart from nothing
	}
	snap := recovery.Replay(disk)
	n.lastReplay = snap
	n.needsRecovery = false
	n.recoveries++
	n.c.m.recoveries.Inc()
	n.c.m.replayRecords.Add(int64(snap.Records))
	n.c.m.replayBytes.Add(int64(len(disk)))
	n.c.m.tracer.Emit("stack", "recover", n.id, obs.NoPeer, int64(snap.Records), snap.Truncated)

	if !n.c.skipReplay {
		// Discard the torn tail — replay stops at the first torn record,
		// so anything appended after it would be dead bytes a future
		// replay never reaches — and resync the WAL's logical offsets
		// (the enqueued records the crash discarded left them ahead of
		// the durable image).
		st := n.wal.Storage()
		base := st.Base()
		if snap.TruncatedAt < len(disk) {
			st.TruncateTail(base + snap.TruncatedAt)
		}
		n.wal.Resync(base+snap.TruncatedAt, logicalOff(base, snap.CheckpointAt), logicalOff(base, snap.PrevCheckpointAt))
	}

	n.restoreProc(snap)

	// The rebuilt VS incarnation starts only once its recovery marker is
	// durable: the marker count is then a strictly increasing incarnation
	// number even across crashes during recovery, and it partitions the
	// send-sequence space so MsgIDs never repeat. Until the marker's
	// completion the node is deaf (the wiped incarnation stays registered
	// but dead); the membership machinery pulls it back in afterwards.
	inc := snap.Incarnations + 1
	guard := n.incarnation
	n.waPending++
	n.wal.Recovered(inc, func() {
		if n.incarnation != guard {
			return
		}
		n.waPending--
		n.startRecovered(snap, inc)
	})
}

// restoreProc rebuilds the VStoTO automaton from a WAL replay snapshot:
// restored to the last durable establishment (extended by durable order
// appends), the persisted delivery prefix marked reported, and durable-
// but-unlabeled submissions back in the delay queue.
// logicalOff rebases a replay-relative offset (within the retained
// image) to the log's logical coordinates; -1 (absent) stays -1.
func logicalOff(base, off int) int {
	if off < 0 {
		return -1
	}
	return base + off
}

func (n *Node) restoreProc(snap *recovery.Snapshot) {
	proc := vstoto.NewProc(n.id, n.c.qs, types.ProcSet{})
	proc.Order = append([]types.Label(nil), snap.Order...)
	proc.NextConfirm = snap.NextConfirm
	proc.NextReport = len(snap.Delivered) + 1
	proc.HighPrimary = snap.HighPrimary
	for l, a := range snap.Content {
		proc.Content[l] = a
	}
	for _, pv := range snap.Pending {
		proc.Delay = append(proc.Delay, pv.Value)
		n.delaySeqs = append(n.delaySeqs, pv.Seq)
	}
	n.proc = proc
	n.bcastSeq = snap.BcastSeq
	// The backlog bound survives restarts: every durable submission not in
	// the durable own-origin delivered prefix is still outstanding.
	own := 0
	for _, d := range snap.Delivered {
		if d.From == n.id {
			own++
		}
	}
	n.pendingOwn = snap.BcastSeq - own
	if n.pendingOwn < 0 {
		n.pendingOwn = 0
	}
	n.hasView = snap.HasView
	n.curView = snap.View
}

// startRecovered brings up the rebuilt VS incarnation; it runs from the
// recovery marker's completion callback.
func (n *Node) startRecovered(snap *recovery.Snapshot, inc int) {
	n.walInc = inc
	n.vs = vsimpl.NewRecoveredNode(n.id, n.c.Procs, n.sim, n.c.tr, n.orc, n.c.Cfg,
		vsimpl.Resume{ViewFloor: snap.ViewFloor(), SendSeqFloor: inc * incarnationSeqSpan},
		n.handlers())
	n.vs.Log = n.c.Log
	n.vs.SetInstallGate(n.gateInstall)
	n.vs.Start()
	n.drain()
}

// drain runs every enabled locally controlled action to quiescence: label,
// gpsnd (values and summaries), confirm, and brcv, interleaved in a fixed
// order. A stopped processor takes no steps; a paused (bad) processor's
// inputs have already mutated state, which models the paper's assumption
// that crashes suspend progress but preserve state; an amnesiac processor
// was rebuilt from its WAL before this runs again.
//
// Deliveries are write-ahead gated: the brcv branch writes the delivery
// record and releases the value to the client only from the record's
// completion callback, so the durable delivery prefix never lags the
// delivered one.
func (n *Node) drain() {
	if n.orc.Proc(n.id).Down() {
		return
	}
	n.drainDepth++
	if n.drainDepth == 1 {
		n.batchMark = len(n.deliveries)
	}
	for {
		progress := false
		for n.deliverReady > 0 {
			n.deliverReady--
			n.performBrcv()
			progress = true
		}
		if _, ok := n.proc.LabelEnabled(); ok {
			seq := n.delaySeqs[0]
			n.delaySeqs = n.delaySeqs[1:]
			l := n.proc.Label()
			if n.labelAt != nil {
				n.labelAt[l] = n.sim.Now()
			}
			n.wal.Label(seq, l, n.proc.Content[l], nil)
			progress = true
		}
		if n.proc.GpsndSummaryEnabled() {
			n.vs.Gpsnd(n.proc.GpsndSummary())
			progress = true
		}
		if _, ok := n.proc.GpsndValueEnabled(); ok {
			n.vs.Gpsnd(n.proc.GpsndValue())
			progress = true
		}
		if n.proc.ConfirmEnabled() {
			if n.confirmAt != nil {
				l := n.proc.Order[n.proc.NextConfirm-1]
				n.confirmAt[l] = n.sim.Now()
				if at, ok := n.labelAt[l]; ok {
					// Only the origin holds a labelAt entry, so this samples
					// the origin-side label→confirm latency once per label.
					n.c.m.labelToConfirm.Record(n.sim.Now().Sub(at))
					delete(n.labelAt, l)
				}
			}
			n.proc.Confirm()
			progress = true
		}
		// Write delivery records ahead of the release point, up to the
		// pipeline depth: while one record's write is riding out the
		// storage latency the next confirmed positions get their records
		// enqueued behind it (and, under group commit, coalesced into the
		// same covering write) instead of waiting a full λ each.
		for n.deliverInFlight+n.deliverReady < n.c.deliverPipe {
			pos := n.proc.NextReport + n.deliverReady + n.deliverInFlight
			from, a, ok := n.proc.BrcvEnabledAt(pos)
			if !ok {
				break
			}
			l := n.proc.Order[pos-1]
			inc := n.incarnation
			n.deliverInFlight++
			n.waPending++
			n.wal.Deliver(pos, l, from, n.originSeq(pos, from), a, func() {
				if n.incarnation != inc {
					return
				}
				n.waPending--
				n.deliverInFlight--
				n.deliverReady++
				n.drain()
			})
		}
		if !progress {
			break
		}
	}
	n.drainDepth--
	if n.drainDepth == 0 {
		if batch := n.deliveries[n.batchMark:]; len(batch) > 0 {
			for _, fn := range n.onBatch {
				fn(batch)
			}
		}
	}
	n.maybeCheckpoint()
}

// maybeCheckpoint appends a checkpoint record once ckptEvery bytes of log
// have accumulated since the last one, but only at a quiescent instant:
// no write-ahead record in flight (between its enqueue and completion the
// log runs ahead of memory), no durable delivery awaiting release, and
// the automaton in normal status. Write-behind records still queued are
// fine — they precede the checkpoint through the single FIFO write head,
// so the durable prefix ending at the checkpoint always replays to
// exactly the captured state.
func (n *Node) maybeCheckpoint() {
	if n.ckptEvery <= 0 || n.ckptPending || n.waPending > 0 || n.deliverReady > 0 ||
		n.proc.Status != vstoto.StatusNormal || n.wal.SinceCheckpoint() < n.ckptEvery {
		return
	}
	cs := recovery.CheckpointState{
		HasView:        n.hasView,
		View:           n.curView,
		Order:          n.proc.Order,
		Content:        n.proc.Content,
		NextConfirm:    n.proc.NextConfirm,
		HighPrimary:    n.proc.HighPrimary,
		DeliveredCount: n.proc.NextReport - 1,
		BcastSeq:       n.bcastSeq,
		Incarnations:   n.walInc,
	}
	for i, a := range n.proc.Delay {
		cs.Pending = append(cs.Pending, recovery.PendingValue{Seq: n.delaySeqs[i], Value: a})
	}
	n.ckptPending = true
	n.checkpoints++
	inc := n.incarnation
	n.wal.Checkpoint(cs, func() {
		if n.incarnation != inc {
			return
		}
		n.ckptPending = false
	})
}

// Checkpoints returns how many checkpoint records this node has appended
// (across its current process lifetime).
func (n *Node) Checkpoints() int { return n.checkpoints }

// performBrcv releases the delivery whose record just became durable.
func (n *Node) performBrcv() {
	from, a, ok := n.proc.BrcvEnabled()
	if !ok {
		return
	}
	reportIdx := n.proc.NextReport // 1-based position about to be consumed
	n.proc.Brcv()
	d := Delivery{From: from, Value: a, Time: n.sim.Now()}
	n.deliveries = append(n.deliveries, d)
	if from == n.id && n.pendingOwn > 0 {
		n.pendingOwn--
	}
	n.c.m.deliveries.Inc()
	if n.c.submitted != nil {
		l := n.proc.Order[reportIdx-1]
		if at, ok := n.confirmAt[l]; ok {
			n.c.m.confirmToRelease.Record(n.sim.Now().Sub(at))
			delete(n.confirmAt, l)
		}
		if at, ok := n.c.submitted[submitKey{origin: from, seq: n.originSeq(reportIdx, from)}]; ok {
			n.c.m.deliverLatency.Record(n.sim.Now().Sub(at))
		}
	}
	if n.log != nil {
		n.log.Append(props.Event{
			T: n.sim.Now(), Kind: props.TOBrcv, P: n.id, From: from,
			Value: a, ValueSeq: n.originSeq(reportIdx, from),
		})
	}
	for _, fn := range n.onRcv {
		fn(d)
	}
}

// originSeq computes the per-origin submission index of the delivered
// value: among the labels in this node's order up to and including
// position idx, the count from the same origin. Because TO delivers each
// origin's values in submission order with no gaps, this equals the
// origin's bcast sequence number — giving the log the identity it needs to
// match brcv events with bcast events.
func (n *Node) originSeq(idx int, origin types.ProcID) int {
	count := 0
	for i := 0; i < idx && i < len(n.proc.Order); i++ {
		if n.proc.Order[i].Origin == origin {
			count++
		}
	}
	return count
}
