// Package stack composes the VStoTO algorithm over the VS implementation
// into the paper's TO service (the dashed box of Figure 1): one TO endpoint
// per processor, each wiring a vstoto.Proc to a vsimpl.Node and running the
// algorithm's locally controlled actions eagerly — the timed model's "good
// processors take enabled steps with no time delay".
package stack

import (
	"time"

	"repro/internal/codec"
	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// Delivery is one totally ordered delivery to the client at a node.
type Delivery struct {
	From  types.ProcID
	Value types.Value
	Time  sim.Time
}

// Node is one processor's TO endpoint.
type Node struct {
	id    types.ProcID
	sim   *sim.Sim
	orc   *failures.Oracle
	proc  *vstoto.Proc
	vs    *vsimpl.Node
	log   *props.Log
	onRcv []func(Delivery)

	bcastSeq   int        // per-origin submission counter for the log
	deliveries []Delivery // everything delivered here, in order
}

// Cluster is a full TO service instance on a simulator: the network, the
// failure oracle, and one Node per processor.
type Cluster struct {
	Sim    *sim.Sim
	Oracle *failures.Oracle
	Net    *net.Network
	Log    *props.Log
	Procs  types.ProcSet
	Cfg    vsimpl.Config
	nodes  map[types.ProcID]*Node
}

// Options configures NewCluster.
type Options struct {
	Seed    int64
	N       int
	P0Size  int // processors initially in the group (default: all)
	Delta   time.Duration
	Jitter  bool
	Quorums types.QuorumSystem // default: majorities of the universe
	// Pi and Mu override the derived defaults when non-zero.
	Pi, Mu time.Duration
	// Wire, when true, serializes every payload crossing the network
	// through the binary wire codec and back, so no pointer survives a
	// hop (a realism/honesty mode; slightly slower).
	Wire bool
	// CollectWait overrides the membership collection window (see
	// vsimpl.Config.CollectWait); used by the E9 ablation.
	CollectWait time.Duration
	// OneRound selects the one-round membership protocol of footnote 7
	// (see vsimpl.Config.OneRound); used by experiment E10.
	OneRound bool
	// NoTokenCompaction disables token compaction (see
	// vsimpl.Config.NoTokenCompaction); used by the E11 ablation.
	NoTokenCompaction bool
	// OnDeliver, when non-nil, observes every delivery at every node.
	OnDeliver func(p types.ProcID, d Delivery)
}

// NewCluster builds and starts a TO service instance.
func NewCluster(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("stack: N must be positive")
	}
	if opts.Delta <= 0 {
		opts.Delta = time.Millisecond
	}
	if opts.P0Size <= 0 || opts.P0Size > opts.N {
		opts.P0Size = opts.N
	}
	s := sim.New(opts.Seed)
	oracle := failures.NewOracle(s.Now)
	netCfg := net.Config{Delta: opts.Delta, Jitter: opts.Jitter, UglyLossProb: 0.5, UglyMaxDelayFactor: 10}
	if opts.Wire {
		netCfg.Transcode = codec.Roundtrip
	}
	nw := net.New(s, oracle, netCfg)
	procs := types.RangeProcSet(opts.N)
	p0 := types.NewProcSet(procs.Members()[:opts.P0Size]...)
	qs := opts.Quorums
	if qs == nil {
		qs = types.Majorities{Universe: procs}
	}
	cfg := vsimpl.DefaultConfig(opts.Delta, opts.N)
	if opts.Pi > 0 {
		cfg.Pi = opts.Pi
	}
	if opts.Mu > 0 {
		cfg.Mu = opts.Mu
	}
	if opts.CollectWait > 0 {
		cfg.CollectWait = opts.CollectWait
	}
	cfg.OneRound = opts.OneRound
	cfg.NoTokenCompaction = opts.NoTokenCompaction
	c := &Cluster{
		Sim: s, Oracle: oracle, Net: nw,
		Log:   &props.Log{},
		Procs: procs,
		Cfg:   cfg,
		nodes: make(map[types.ProcID]*Node, opts.N),
	}
	for _, p := range procs.Members() {
		node := &Node{
			id:   p,
			sim:  s,
			orc:  oracle,
			proc: vstoto.NewProc(p, qs, p0),
			log:  c.Log,
		}
		if opts.OnDeliver != nil {
			p := p
			node.onRcv = append(node.onRcv, func(d Delivery) { opts.OnDeliver(p, d) })
		}
		node.vs = vsimpl.NewNode(p, procs, p0, s, nw, oracle, cfg, vsimpl.Handlers{
			Newview: node.onNewview,
			Gprcv:   node.onGprcv,
			Safe:    node.onSafe,
		})
		node.vs.Log = c.Log
		c.nodes[p] = node
	}
	for _, p := range procs.Members() {
		c.nodes[p].vs.Start()
	}
	// A processor that recovers (bad → good) immediately resumes its
	// enabled steps, per the timed model.
	oracle.Watch(func(e failures.Event) {
		if !e.Channel && e.Status == failures.Good {
			if node, ok := c.nodes[e.Proc]; ok {
				s.Defer(node.drain)
			}
		}
	})
	return c
}

// Node returns the endpoint for processor p.
func (c *Cluster) Node(p types.ProcID) *Node { return c.nodes[p] }

// ApplySchedule arms a failure schedule against the running cluster: every
// event is applied to the oracle at exactly its recorded time. This is the
// chaos harness's injection point; combined with the oracle's recorded
// history it makes fault campaigns replayable byte for byte.
func (c *Cluster) ApplySchedule(s failures.Schedule) { s.ApplyAt(c.Sim, c.Oracle) }

// TotalDeliveries returns the number of deliveries summed over all nodes —
// a cheap non-vacuity signal for fault campaigns (a schedule that
// blackholes everything delivers nothing and "passes" every safety check).
func (c *Cluster) TotalDeliveries() int {
	total := 0
	for _, n := range c.nodes {
		total += len(n.deliveries)
	}
	return total
}

// OnDeliver registers an observer invoked on every delivery at every node,
// in delivery order. Observers added after deliveries have occurred see
// only subsequent ones.
func (c *Cluster) OnDeliver(fn func(p types.ProcID, d Delivery)) {
	for _, p := range c.Procs.Members() {
		p := p
		c.nodes[p].onRcv = append(c.nodes[p].onRcv, func(d Delivery) { fn(p, d) })
	}
}

// Bcast submits a client value at processor p.
func (c *Cluster) Bcast(p types.ProcID, a types.Value) { c.nodes[p].Bcast(a) }

// Deliveries returns everything delivered at p so far, in order.
func (c *Cluster) Deliveries(p types.ProcID) []Delivery { return c.nodes[p].deliveries }

// ID returns the node's processor identifier.
func (n *Node) ID() types.ProcID { return n.id }

// Proc exposes the underlying VStoTO automaton (read-only use: inspection
// in tests and experiments).
func (n *Node) Proc() *vstoto.Proc { return n.proc }

// VS exposes the underlying VS endpoint.
func (n *Node) VS() *vsimpl.Node { return n.vs }

// Bcast is the client's bcast(a)_p input.
func (n *Node) Bcast(a types.Value) {
	n.bcastSeq++
	if n.log != nil {
		n.log.Append(props.Event{
			T: n.sim.Now(), Kind: props.TOBcast, P: n.id, Value: a, ValueSeq: n.bcastSeq,
		})
	}
	n.proc.Bcast(a)
	n.drain()
}

// Deliveries returns everything delivered at this node, in order.
func (n *Node) Deliveries() []Delivery { return n.deliveries }

func (n *Node) onNewview(v types.View) {
	n.proc.Newview(v)
	n.drain()
}

func (n *Node) onGprcv(from types.ProcID, payload any) {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		n.proc.GprcvValue(m)
	case *vstoto.Summary:
		n.proc.GprcvSummary(from, m)
	default:
		panic("stack: unexpected VS payload")
	}
	n.drain()
}

func (n *Node) onSafe(from types.ProcID, payload any) {
	switch m := payload.(type) {
	case vstoto.LabeledValue:
		n.proc.SafeValue(m)
	case *vstoto.Summary:
		n.proc.SafeSummary(from)
	default:
		panic("stack: unexpected VS payload")
	}
	n.drain()
}

// drain runs every enabled locally controlled action to quiescence: label,
// gpsnd (values and summaries), confirm, and brcv, interleaved in a fixed
// order. A stopped processor takes no steps; its inputs have already
// mutated state, which models the paper's assumption that crashes suspend
// progress but preserve state.
func (n *Node) drain() {
	if n.orc.Proc(n.id) == failures.Bad {
		return
	}
	for {
		progress := false
		if _, ok := n.proc.LabelEnabled(); ok {
			n.proc.Label()
			progress = true
		}
		if n.proc.GpsndSummaryEnabled() {
			n.vs.Gpsnd(n.proc.GpsndSummary())
			progress = true
		}
		if _, ok := n.proc.GpsndValueEnabled(); ok {
			n.vs.Gpsnd(n.proc.GpsndValue())
			progress = true
		}
		if n.proc.ConfirmEnabled() {
			n.proc.Confirm()
			progress = true
		}
		if from, a, ok := n.proc.BrcvEnabled(); ok {
			reportIdx := n.proc.NextReport // 1-based position about to be consumed
			n.proc.Brcv()
			d := Delivery{From: from, Value: a, Time: n.sim.Now()}
			n.deliveries = append(n.deliveries, d)
			if n.log != nil {
				n.log.Append(props.Event{
					T: n.sim.Now(), Kind: props.TOBrcv, P: n.id, From: from,
					Value: a, ValueSeq: n.originSeq(reportIdx, from),
				})
			}
			for _, fn := range n.onRcv {
				fn(d)
			}
			progress = true
		}
		if !progress {
			return
		}
	}
}

// originSeq computes the per-origin submission index of the delivered
// value: among the labels in this node's order up to and including
// position idx, the count from the same origin. Because TO delivers each
// origin's values in submission order with no gaps, this equals the
// origin's bcast sequence number — giving the log the identity it needs to
// match brcv events with bcast events.
func (n *Node) originSeq(idx int, origin types.ProcID) int {
	count := 0
	for i := 0; i < idx && i < len(n.proc.Order); i++ {
		if n.proc.Order[i].Origin == origin {
			count++
		}
	}
	return count
}
