package pgcs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/codec"
	"repro/internal/failures"
	"repro/internal/net"
	"repro/internal/rsm"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
	"repro/internal/vsimpl"
	"repro/internal/vstoto"
)

// BenchmarkCodecRoundtrip measures wire-codec cost for the common payloads.
func BenchmarkCodecRoundtrip(b *testing.B) {
	lv := vstoto.LabeledValue{
		L: types.Label{ID: types.G0(), Seqno: 42, Origin: 3},
		A: "a moderately sized payload value for the benchmark",
	}
	con := make(map[types.Label]types.Value, 50)
	ord := make([]types.Label, 0, 50)
	for i := 1; i <= 50; i++ {
		l := types.Label{ID: types.G0(), Seqno: i, Origin: types.ProcID(i % 5)}
		con[l] = types.Value(fmt.Sprintf("value-%d", i))
		ord = append(ord, l)
	}
	sum := &vstoto.Summary{Con: con, Ord: ord, Next: 25, High: types.G0()}

	b.Run("labeled-value", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := codec.Roundtrip(lv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("summary-50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := codec.Roundtrip(sum); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTOCheckerThroughput measures the trace checker's per-event cost.
func BenchmarkTOCheckerThroughput(b *testing.B) {
	const n = 5
	ck := check.NewTOChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := types.ProcID(i % n)
		v := types.Value(fmt.Sprintf("v%d", i))
		ck.Bcast(v, origin)
		for q := 0; q < n; q++ {
			if err := ck.Brcv(v, origin, types.ProcID(q)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(ck.Events())/float64(b.N), "events/op")
}

// BenchmarkTokenRing measures raw VS-layer delivery throughput (messages
// safe everywhere per simulated second).
func BenchmarkTokenRing(b *testing.B) {
	for _, n := range []int{3, 8} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			s := sim.New(1)
			oracle := failures.NewOracle(s.Now)
			nw := net.New(s, oracle, net.Config{Delta: time.Millisecond})
			procs := types.RangeProcSet(n)
			cfg := vsimpl.DefaultConfig(time.Millisecond, n)
			nodes := make([]*vsimpl.Node, n)
			for i := 0; i < n; i++ {
				nodes[i] = vsimpl.NewNode(types.ProcID(i), procs, procs, s, nw, oracle, cfg, vsimpl.Handlers{})
			}
			for _, nd := range nodes {
				nd.Start()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes[i%n].Gpsnd(i)
				if i%32 == 31 {
					if err := s.RunFor(100 * time.Millisecond); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := s.RunFor(2 * time.Second); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := nodes[0].Stats()
			if st.Delivered < b.N {
				b.Fatalf("delivered %d of %d", st.Delivered, b.N)
			}
			b.ReportMetric(float64(st.SafeEmitted)/(float64(s.Now())/float64(time.Second)), "safe/simsec")
		})
	}
}

// BenchmarkApplyParallel measures the rsm apply stage at several worker
// counts: one delivered burst of writes over distinct keys (wide
// antichains under the default conflict relation) applied by a fresh
// memory per iteration under a CPU-heavy ApplyFunc. On a multi-core host
// workers-4 should approach 4x the workers-1 rate; on a single core the
// numbers just document the (small) planner overhead.
func BenchmarkApplyParallel(b *testing.B) {
	const (
		n     = 3
		burst = 1024
		keys  = 256
	)
	c := stack.NewCluster(stack.Options{Seed: 41, N: n, Delta: time.Millisecond})
	if err := c.Sim.RunFor(30 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		op := rsm.Op{Kind: "w", Key: fmt.Sprintf("k%d", i%keys), Val: fmt.Sprintf("v%d", i), Nonce: i + 1}
		c.Bcast(types.ProcID(i%n), op.Encode())
	}
	for c.TotalDeliveries() < n*burst {
		if err := c.Sim.RunFor(50 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	heavy := func(op rsm.Op, cur string) string {
		h := uint64(14695981039346656037)
		for r := 0; r < 400; r++ {
			for i := 0; i < len(op.Val); i++ {
				h = (h ^ uint64(op.Val[i])) * 1099511628211
			}
		}
		return fmt.Sprintf("%x", h)
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := rsm.New(c)
				m.SetWorkers(w)
				m.SetApply(heavy)
				if err := m.Pump(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n*burst), "ops/apply")
		})
	}
}

// BenchmarkExplorer measures exhaustive-exploration state throughput.
func BenchmarkExplorer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := vstoto.Explore(vstoto.ExploreConfig{N: 2, MaxBcasts: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.States), "states/op")
	}
}
