// Command pgcsd runs one processor of the partitionable group
// communication service as a real daemon: the full stack (VS
// implementation, VStoTO, write-ahead recovery log) over the TCP
// transport, paced against the wall clock.
//
//	pgcsd -config cluster.json -id 0 -wal node0.wal -trace node0.r0.jsonl
//
// The WAL file persists across restarts: a daemon booted over a
// non-empty WAL rejoins through the amnesia-recovery path, one
// incarnation up. Clients speak the line protocol on the node's
// client_addr (S <value> submits, answered BUSY <value> past the
// -max-pending backpressure bound; D <from> <value> streams deliveries;
// STATUS reports ST <OK|STALLED> <pending> <delivered>;
// PING/LPAUSE/LRESUME/METRICS/STOP control). SIGINT/SIGTERM shut down
// gracefully, draining the transport and writing the metrics snapshot.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/live"
	"repro/internal/types"
)

func main() {
	var (
		configPath  = flag.String("config", "", "cluster config JSON (required)")
		id          = flag.Int("id", -1, "this node's id (required)")
		walPath     = flag.String("wal", "", "write-ahead-log file (required; persists across restarts)")
		tracePath   = flag.String("trace", "", "JSONL trace output for this incarnation (required)")
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON written on shutdown")
		ckptBytes   = flag.Int("checkpoint-bytes", 0, "WAL snapshot/compaction threshold in bytes (0 disables)")
		maxPending  = flag.Int("max-pending", 4096, "accepted-but-undelivered submission bound; past it S is answered BUSY (0 disables)")
		tickMS      = flag.Int("tick", 2, "pacer granularity in milliseconds")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")

		commitWindow  = flag.Duration("commit-window", 0, "WAL group-commit window (0 = coalesce behind in-flight writes only)")
		noGroupCommit = flag.Bool("no-group-commit", false, "disable WAL group commit and delivery pipelining (legacy one-write-per-record path)")
		deliverPipe   = flag.Int("deliver-pipeline", 0, "delivery records kept in flight ahead of the release point (0 = default: 64 with group commit, 1 without)")
		batchMsgs     = flag.Int("batch-msgs", 0, "max messages per transport batch frame (0 = default 64, 1 disables batching)")
		batchBytes    = flag.Int("batch-bytes", 0, "max payload bytes per transport batch frame (0 = default 256KiB)")
	)
	flag.Parse()
	if *configPath == "" || *id < 0 || *walPath == "" || *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := live.LoadConfig(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	eng, err := live.StartEngine(live.EngineOptions{
		Config:          cfg,
		Self:            types.ProcID(*id),
		WALPath:         *walPath,
		TracePath:       *tracePath,
		MetricsPath:     *metricsPath,
		CheckpointBytes: *ckptBytes,
		MaxPending:      *maxPending,
		CommitWindow:    *commitWindow,
		GroupCommitOff:  *noGroupCommit,
		DeliverPipeline: *deliverPipe,
		BatchMsgs:       *batchMsgs,
		BatchBytes:      *batchBytes,
		Tick:            durationMS(*tickMS),
		Logf:            logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("READY %d %s\n", *id, eng.ClientAddr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sigc:
		logf("node %d: %v, shutting down", *id, s)
		eng.Close()
	case <-eng.Stopped:
	}
	<-eng.Stopped
}

func durationMS(ms int) (d time.Duration) { return time.Duration(ms) * time.Millisecond }
