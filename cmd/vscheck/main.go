// Command vscheck reads a timed external trace (JSON lines, as written by
// tosim -trace) and checks it against the formal specifications: the VS
// events must form a trace of VS-machine (the Lemma 4.2 properties:
// integrity, no duplication, no reordering, per-view prefix total order,
// safe semantics), and the TO events must form a trace of TO-machine (one
// global total order, prefix delivery, per-sender FIFO).
//
// Usage:
//
//	go run ./cmd/tosim -n 5 -partition 0,1,2 -trace trace.jsonl
//	go run ./cmd/vscheck trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/props"
	"repro/internal/types"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vscheck <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	log, err := props.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		os.Exit(1)
	}

	// Reconstruct the universe and initial membership from the trace.
	universe := map[types.ProcID]bool{}
	for p := range log.Initial {
		universe[p] = true
	}
	for _, e := range log.Events {
		universe[e.P] = true
		if e.Kind == props.VSNewview {
			for _, m := range e.View.Set.Members() {
				universe[m] = true
			}
		}
	}
	var all []types.ProcID
	for p := range universe {
		all = append(all, p)
	}
	var p0 []types.ProcID
	for p := range log.Initial {
		p0 = append(p0, p)
	}

	vs := check.NewVSChecker(types.NewProcSet(all...), types.NewProcSet(p0...))
	to := check.NewTOChecker()
	vsEvents, toEvents := 0, 0
	for i, e := range log.Events {
		var err error
		switch e.Kind {
		case props.VSNewview:
			err = vs.Newview(e.View, e.P)
			vsEvents++
		case props.VSGpsnd:
			err = vs.Gpsnd(e.Msg)
			vsEvents++
		case props.VSGprcv:
			err = vs.Gprcv(e.Msg, e.P)
			vsEvents++
		case props.VSSafe:
			err = vs.Safe(e.Msg, e.P)
			vsEvents++
		case props.TOBcast:
			to.Bcast(e.Value, e.P)
			toEvents++
		case props.TOBrcv:
			err = to.Brcv(e.Value, e.From, e.P)
			toEvents++
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "VIOLATION at event %d (%v):\n  %v\n", i, e, err)
			os.Exit(1)
		}
	}
	fmt.Printf("trace OK: %d VS events conform to VS-machine, %d TO events conform to TO-machine\n",
		vsEvents, toEvents)
	fmt.Printf("global total order constructed: %d values\n", to.OrderLen())
}
