// Command experiments regenerates every table of the reproduction's
// evaluation (E1–E8 in DESIGN.md): the paper's conditional properties
// (TO-property, VS-property), the Figure 12 phase decomposition, the
// Section 8 analytic bounds, the stable-storage baseline comparison, and
// the randomized safety checks.
//
// Usage:
//
//	go run ./cmd/experiments                            # all experiments
//	go run ./cmd/experiments -exp E4                    # one experiment
//	go run ./cmd/experiments -seed 7                    # different randomness
//	go run ./cmd/experiments -workers 1                 # serial run
//	go run ./cmd/experiments -bench-out BENCH_baseline.json
//	                                    # machine-readable bench baseline only
//	go run ./cmd/experiments -sweep-out BENCH_sweep.json
//	                                    # serial-vs-parallel sweep benchmark
//	go run ./cmd/experiments -explore-out BENCH_explore.json
//	                                    # model-checking state-space benchmark
//	go run ./cmd/experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Runs are deterministic in the seed: -workers changes only wall-clock
// time, never a table cell (the sweep engine aggregates results in
// submission order).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	var (
		exp        = flag.String("exp", "", "run a single experiment (E1..E18); default all")
		seed       = flag.Int64("seed", 1, "seed for all randomized runs")
		workers    = flag.Int("workers", runtime.NumCPU(), "parallel runs (1 = serial; output is identical either way)")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		benchOut   = flag.String("bench-out", "", "write the machine-readable bench baseline (throughput, latency percentiles, per-layer counters) to this JSON file; without -exp, skips the tables")
		sweepOut   = flag.String("sweep-out", "", "run the serial-vs-parallel sweep benchmark and write its report to this JSON file")
		minSpeedup = flag.Float64("min-speedup", 0, "with -sweep-out: fail unless the parallel sweep is at least this many times faster than serial (checked only on multi-core hosts with -workers > 1)")
		exploreOut = flag.String("explore-out", "", "run the model-checking state-space benchmark and write its report to this JSON file")
		minSPS     = flag.Float64("min-states-per-sec", 0, "with -explore-out: fail unless the unreduced exploration sustains at least this many states/sec")
		minDepth   = flag.Int("min-depth", 0, "with -explore-out: fail unless the exploration reaches at least this BFS depth")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if *sweepOut != "" {
		report := experiments.SweepBench(*seed, *workers)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode sweep bench: %v\n", err)
			exit(1)
		}
		if err := os.WriteFile(*sweepOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *sweepOut, err)
			exit(1)
		}
		fmt.Printf("sweep bench (cores=%d workers=%d speedup=%.2fx identical=%v) written to %s\n",
			report.Cores, report.Workers, report.Speedup, report.Identical, *sweepOut)
		if !report.Identical {
			fmt.Fprintln(os.Stderr, "FAIL: parallel sweep output diverged from serial")
			exit(1)
		}
		if *minSpeedup > 0 {
			// The digest-equality gate above always runs; the speedup
			// assertion is only meaningful with real parallelism available.
			// Skipping must be loud: a silent pass on a 1-core runner looks
			// identical to a real pass and hides a perf regression.
			switch {
			case report.Cores < 2:
				fmt.Printf("SKIP: speedup gate (>= %.2fx): host has %d core(s); digest equality still checked\n",
					*minSpeedup, report.Cores)
			case report.Workers <= 1:
				fmt.Printf("SKIP: speedup gate (>= %.2fx): running with %d worker(s); digest equality still checked\n",
					*minSpeedup, report.Workers)
			case report.Speedup < *minSpeedup:
				fmt.Fprintf(os.Stderr, "FAIL: speedup %.2fx below required %.2fx\n", report.Speedup, *minSpeedup)
				exit(1)
			}
		}
		return
	}

	if *exploreOut != "" {
		report := experiments.ExploreBench(*workers)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode explore bench: %v\n", err)
			exit(1)
		}
		if err := os.WriteFile(*exploreOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *exploreOut, err)
			exit(1)
		}
		fmt.Printf("explore bench (states=%d edges=%d depth=%d, %.0f states/sec, POR ratio %.3f) written to %s\n",
			report.States, report.Edges, report.MaxDepth, report.StatesPerSec, report.ReductionRatio, *exploreOut)
		if !report.PORAgree {
			fmt.Fprintf(os.Stderr, "FAIL: POR run disagrees with unreduced run (full=%q por=%q)\n",
				report.ViolationFull, report.ViolationPOR)
			exit(1)
		}
		if report.ViolationFull != "" {
			fmt.Fprintf(os.Stderr, "FAIL: benchmark configuration violated an invariant: %s\n", report.ViolationFull)
			exit(1)
		}
		if report.ReductionRatio >= 1 {
			fmt.Fprintf(os.Stderr, "FAIL: POR reduction ratio %.3f — reduction pruned nothing\n", report.ReductionRatio)
			exit(1)
		}
		if *minDepth > 0 && report.MaxDepth < *minDepth {
			fmt.Fprintf(os.Stderr, "FAIL: reached depth %d below required %d\n", report.MaxDepth, *minDepth)
			exit(1)
		}
		if *minSPS > 0 {
			// Unlike the sweep speedup gate, states/sec has no hardware
			// precondition to skip on — but a floor chosen for CI runners can
			// be wrong for a slow laptop, so the flag is opt-in (CI passes it,
			// the default invocation doesn't).
			if report.StatesPerSec < *minSPS {
				fmt.Fprintf(os.Stderr, "FAIL: %.0f states/sec below required %.0f\n", report.StatesPerSec, *minSPS)
				exit(1)
			}
		}
		return
	}

	if *benchOut != "" {
		report := experiments.BenchBaselineWorkers(*seed, *workers)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode bench baseline: %v\n", err)
			exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *benchOut, err)
			exit(1)
		}
		fmt.Printf("bench baseline (%d scenarios) written to %s\n", len(report.Entries), *benchOut)
		// The bench is its own mode: run the (slow) tables only if asked.
		if *exp == "" {
			return
		}
	}

	var tables []*experiments.Table
	if *exp == "" {
		tables = experiments.AllWorkers(*seed, *workers)
	} else {
		run, ok := experiments.Runner(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E18)\n", *exp)
			exit(2)
		}
		tables = []*experiments.Table{run(*seed, *workers)}
	}

	failed := 0
	for _, t := range tables {
		fmt.Println(t.Format())
		if len(t.Failures) > 0 {
			failed++
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				exit(1)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed validation\n", failed)
		exit(1)
	}
}
