// Command experiments regenerates every table of the reproduction's
// evaluation (E1–E8 in DESIGN.md): the paper's conditional properties
// (TO-property, VS-property), the Figure 12 phase decomposition, the
// Section 8 analytic bounds, the stable-storage baseline comparison, and
// the randomized safety checks.
//
// Usage:
//
//	go run ./cmd/experiments                            # all experiments
//	go run ./cmd/experiments -exp E4                    # one experiment
//	go run ./cmd/experiments -seed 7                    # different randomness
//	go run ./cmd/experiments -bench-out BENCH_baseline.json
//	                                    # machine-readable bench baseline only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment (E1..E14); default all")
		seed     = flag.Int64("seed", 1, "seed for all randomized runs")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		benchOut = flag.String("bench-out", "", "write the machine-readable bench baseline (throughput, latency percentiles, per-layer counters) to this JSON file; without -exp, skips the tables")
	)
	flag.Parse()

	runners := map[string]func(int64) *experiments.Table{
		"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
		"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
		"E7": experiments.E7, "E8": experiments.E8, "E9": experiments.E9,
		"E10": experiments.E10, "E11": experiments.E11, "E12": experiments.E12,
		"E13": experiments.E13, "E14": experiments.E14,
	}

	if *benchOut != "" {
		report := experiments.BenchBaseline(*seed)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode bench baseline: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("bench baseline (%d scenarios) written to %s\n", len(report.Entries), *benchOut)
		// The bench is its own mode: run the (slow) tables only if asked.
		if *exp == "" {
			return
		}
	}

	var tables []*experiments.Table
	if *exp == "" {
		tables = experiments.All(*seed)
	} else {
		run, ok := runners[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E14)\n", *exp)
			os.Exit(2)
		}
		tables = []*experiments.Table{run(*seed)}
	}

	failed := 0
	for _, t := range tables {
		fmt.Println(t.Format())
		if len(t.Failures) > 0 {
			failed++
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed validation\n", failed)
		os.Exit(1)
	}
}
