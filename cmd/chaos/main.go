// Command chaos runs adversarial fault campaigns against the TO/VS stack
// and checks every run for trace conformance (VS-machine and TO-machine),
// recovery liveness after the final heal, and non-vacuity (traffic actually
// flowed). On a violation it shrinks the fault schedule to a minimal
// counterexample by delta debugging and writes a JSON artifact that -replay
// re-executes byte for byte.
//
// Usage examples:
//
//	go run ./cmd/chaos -list
//	go run ./cmd/chaos -campaign all -runs 3
//	go run ./cmd/chaos -campaign leader-crash -seed 42 -n 6 -window 8s -v
//	go run ./cmd/chaos -campaign mixed -runs 5 -out artifacts/
//	go run ./cmd/chaos -campaign all -runs 8 -workers 1   # serial sweep
//	go run ./cmd/chaos -replay artifacts/mixed-seed3.json
//
// The campaign sweep fans the independent runs across -workers cores (and
// delta-debugging evaluates shrink candidates in parallel waves); every
// run is a pure function of its config, so -workers changes only
// wall-clock time — output and artifacts are identical at any setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/prof"
)

func main() {
	var (
		campaign = flag.String("campaign", "all", "campaign type, or 'all'")
		seed     = flag.Int64("seed", 1, "first seed")
		runs     = flag.Int("runs", 1, "seeds per campaign (seed..seed+runs-1)")
		n        = flag.Int("n", 5, "number of processors")
		delta    = flag.Duration("delta", time.Millisecond, "good-channel delivery bound δ")
		window   = flag.Duration("window", 4*time.Second, "adversary window (forced heal at the end)")
		bound    = flag.Duration("bound", 0, "recovery-liveness deadline after the heal (0 = analytic b + 2d)")
		wire     = flag.Bool("wire", false, "transcode every payload through the wire codec")
		outDir   = flag.String("out", "", "directory for counterexample artifacts (default: current dir)")
		maxRuns  = flag.Int("shrink-runs", 600, "delta-debugging budget (candidate runs)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel runs (1 = serial; output is identical either way)")
		replay   = flag.String("replay", "", "replay a counterexample artifact instead of running campaigns")
		list     = flag.Bool("list", false, "list campaign types and exit")
		verbose  = flag.Bool("v", false, "per-run detail")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, ct := range chaos.Campaigns {
			fmt.Println(ct)
		}
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if *replay != "" {
		exit(replayArtifact(*replay, *verbose))
	}

	var campaigns []chaos.CampaignType
	if *campaign == "all" {
		campaigns = chaos.Campaigns
	} else {
		ct, err := chaos.ParseCampaign(*campaign)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		campaigns = []chaos.CampaignType{ct}
	}

	var cfgs []chaos.Config
	for _, ct := range campaigns {
		for s := *seed; s < *seed+int64(*runs); s++ {
			cfgs = append(cfgs, chaos.Config{
				Campaign: ct, Seed: s, N: *n, Delta: *delta,
				Window: *window, RecoveryBound: *bound, Wire: *wire,
			})
		}
	}
	results := chaos.Sweep(cfgs, *workers)

	failures := 0
	for _, r := range results {
		ct, s := r.Config.Campaign, r.Config.Seed
		if r.Failed() && r.Violation.Check == "config" {
			// A bad config is a usage error, not a counterexample: it
			// would fail identically for every seed and its artifact
			// could never be replayed.
			fmt.Fprintln(os.Stderr, r.Violation.Detail)
			exit(2)
		}
		if !r.Failed() {
			if *verbose {
				fmt.Printf("PASS %-18s seed=%-3d events=%-4d msgs=%-4d deliveries=%-5d maxlag=%v (bound %v)\n",
					ct, s, len(r.Schedule), r.Msgs, r.Deliveries, r.Recovery.MaxLag, r.Bound)
			} else {
				fmt.Printf("PASS %-18s seed=%d\n", ct, s)
			}
			continue
		}
		failures++
		fmt.Printf("FAIL %-18s seed=%d: %v\n", ct, s, r.Violation)
		min, st := chaos.ShrinkResultN(r, *maxRuns, *workers)
		fmt.Printf("     shrunk %d → %d fault events in %d runs\n", st.From, st.To, st.Runs)
		path, err := writeArtifact(*outDir, min)
		if err != nil {
			fmt.Fprintf(os.Stderr, "     artifact: %v\n", err)
			continue
		}
		fmt.Printf("     counterexample: %s (replay with -replay %s)\n", path, path)
	}
	if failures > 0 {
		fmt.Printf("%d failing run(s)\n", failures)
		exit(1)
	}
}

func writeArtifact(dir string, r *chaos.Result) (string, error) {
	data, err := chaos.NewArtifact(r).Encode()
	if err != nil {
		return "", err
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	name := fmt.Sprintf("%s-seed%d.json", r.Config.Campaign, r.Config.Seed)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func replayArtifact(path string, verbose bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	art, err := chaos.DecodeArtifact(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("replaying %s: campaign=%s seed=%d n=%d δ=%v window=%v events=%d\n",
		path, art.Campaign, art.Seed, art.N, time.Duration(art.DeltaNS),
		time.Duration(art.WindowNS), len(art.Events))
	if art.Check != "" {
		fmt.Printf("recorded violation: %s: %s\n", art.Check, art.Detail)
	}
	r := chaos.Run(art.Config())
	if verbose {
		for i, e := range r.Schedule {
			fmt.Printf("  event %d: %v\n", i, e)
		}
	}
	if r.Failed() {
		fmt.Printf("REPRODUCED: %v\n", r.Violation)
		if art.Check != "" && r.Violation.Check != art.Check {
			fmt.Printf("note: violated check %q differs from the recorded %q\n", r.Violation.Check, art.Check)
		}
		return 1
	}
	fmt.Println("NOT REPRODUCED: all checks passed")
	if art.Check != "" {
		fmt.Println("note: the artifact recorded a violation; the bug may have been fixed since")
	}
	return 0
}
