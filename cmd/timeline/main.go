// Command timeline renders a recorded trace (JSON lines, as produced by
// tosim -trace) as a per-processor text timeline, making partition and
// merge dynamics visible at a glance. See internal/timeline for the
// renderer.
//
// Usage:
//
//	go run ./cmd/tosim -n 5 -partition 0,1,2 -heal 500ms -trace trace.jsonl
//	go run ./cmd/timeline -bucket 20ms trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/props"
	"repro/internal/timeline"
)

func main() {
	bucket := flag.Duration("bucket", 10*time.Millisecond, "time bucket per row")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: timeline [-bucket 10ms] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := props.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(timeline.Render(log, *bucket))
}
