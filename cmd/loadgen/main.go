// Command loadgen drives a live pgcsd cluster with a closed-loop
// broadcast workload and reports throughput and delivery-latency
// percentiles in the benchmark baseline's JSON shape.
//
//	loadgen -config cluster.json -rate 200 -duration 30s -out report.json
//
// Submissions round-robin across every node's client address at the
// target rate, with per-connection backpressure. Delivery latency is
// measured submit → delivery at the submitting node. A node that dies
// mid-run is redialed until it returns, so a kill/restart fault shows up
// in the latency tail, not as a generator failure. Submissions the
// daemon bounces with BUSY (its -max-pending backpressure bound) are
// retried with jittered exponential backoff (-retry-base doubling up to
// -retry-max, -retries attempts); an op undelivered past -op-timeout is
// attributed as stalled rather than held against the closed loop, and a
// hard failure is only ever an exhausted retry budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/live"
)

func main() {
	var (
		configPath = flag.String("config", "", "cluster config JSON (required)")
		rate       = flag.Int("rate", 100, "target submissions per second across the cluster")
		duration   = flag.Duration("duration", 30*time.Second, "submission window")
		drain      = flag.Duration("drain", 10*time.Second, "post-window wait for outstanding deliveries")
		runID      = flag.String("run-id", fmt.Sprintf("r%d", os.Getpid()), "value-uniquifying run id")
		out        = flag.String("out", "", "write the report JSON here (default stdout only)")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")

		opTimeout = flag.Duration("op-timeout", 5*time.Second, "reclassify an undelivered op as stalled after this long")
		retryBase = flag.Duration("retry-base", 100*time.Millisecond, "first retry backoff for BUSY/send-failed ops (doubles per attempt, jittered)")
		retryMax  = flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
		retries   = flag.Int("retries", 10, "retry budget per op; exhaustion is a hard failure")
	)
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := live.LoadConfig(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		addrs[i] = n.ClientAddr
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	entry, err := live.RunLoad(live.LoadOptions{
		Addrs:     addrs,
		Rate:      *rate,
		Duration:  *duration,
		Drain:     *drain,
		RunID:     *runID,
		OpTimeout: *opTimeout,
		RetryBase: *retryBase,
		RetryMax:  *retryMax,
		Retries:   *retries,
		Logf:      logf,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := experiments.BenchReport{Seed: cfg.Seed, Entries: []experiments.BenchEntry{entry}}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	lat := entry.DeliveryLatency
	fmt.Printf("throughput: %.1f deliveries/sec (%d bcasts, %d deliveries in %v)\n",
		entry.DeliveriesPerSec, entry.Bcasts, entry.Deliveries,
		time.Duration(entry.VirtualNS))
	fmt.Printf("delivery latency: p50 %v  p99 %v  max %v  (%d samples)\n",
		time.Duration(lat.P50NS), time.Duration(lat.P99NS), time.Duration(lat.MaxNS), lat.Count)
	fmt.Printf("backpressure: %d rejected, %d retries, %d stalled (%d recovered), %d hard failures\n",
		entry.Counters["loadgen.rejected"], entry.Counters["loadgen.retries"],
		entry.Counters["loadgen.stalled_ops"], entry.Counters["loadgen.stalled_recovered"],
		entry.Counters["loadgen.hard_failures"])
	if *out == "" {
		os.Stdout.Write(append(b, '\n'))
	}
}
