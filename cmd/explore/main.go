// Command explore runs the bounded exhaustive model checker over the
// spec-level VStoTO-system: every reachable state of the composition (for
// a tiny configuration) is checked against the Section 6 invariants, and
// every transition against the forward-simulation step condition to
// TO-machine. Within the bounds this checks Theorem 6.26 for every
// interleaving, not just sampled ones.
//
// The search runs wave-parallel across -workers goroutines with results
// identical at every worker count; -por enables partial-order reduction,
// and -crosscheck runs the configuration both reduced and unreduced and
// fails on a verdict disagreement (the POR soundness smoke check CI runs).
//
// Usage:
//
//	go run ./cmd/explore -n 2 -bcasts 2
//	go run ./cmd/explore -n 2 -bcasts 2 -views 1 -por
//	go run ./cmd/explore -n 2 -bcasts 1 -views 1 -crosscheck
//	go run ./cmd/explore -n 2 -bcasts 1 -views 1 -literal-label   # finds the Figure 10 defect
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/types"
	"repro/internal/vstoto"
)

func main() {
	var (
		n         = flag.Int("n", 2, "number of processors")
		p0        = flag.Int("p0", 0, "initial-view size (0 = all)")
		bcasts    = flag.Int("bcasts", 2, "client values to explore")
		views     = flag.Int("views", 0, "number of additional full views to offer createview")
		maxStates = flag.Int("max-states", 2_000_000, "state budget (0 = unlimited)")
		workers   = flag.Int("workers", runtime.NumCPU(), "expansion parallelism (results are identical at every worker count)")
		por       = flag.Bool("por", false, "enable partial-order reduction")
		crossChk  = flag.Bool("crosscheck", false,
			"run both with and without partial-order reduction and fail on a verdict disagreement")
		literal = flag.Bool("literal-label", false,
			"use Figure 10's literal label precondition (reproduces the documented defect)")
	)
	flag.Parse()

	cfg := vstoto.ExploreConfig{
		N:                    *n,
		P0Size:               *p0,
		MaxBcasts:            *bcasts,
		MaxStates:            *maxStates,
		Workers:              *workers,
		POR:                  *por,
		LiteralFigure10Label: *literal,
	}
	for i := 0; i < *views; i++ {
		cfg.Views = append(cfg.Views, types.View{
			ID:  types.ViewID{Epoch: int64(2 + i), Proc: types.ProcID((i + 1) % *n)},
			Set: types.RangeProcSet(*n),
		})
	}

	if *crossChk {
		start := time.Now()
		c := vstoto.ExplorePORCrossCheck(cfg)
		elapsed := time.Since(start)
		fmt.Printf("full:    %d states, %d edges (depth %d)\n", c.Full.States, c.Full.Edges, c.Full.MaxDepth)
		fmt.Printf("reduced: %d states, %d edges (depth %d, %d ample, ratio %.3f)\n",
			c.Reduced.States, c.Reduced.Edges, c.Reduced.MaxDepth, c.Reduced.AmpleStates, c.ReductionRatio())
		fmt.Printf("cross-check completed in %v\n", elapsed.Round(time.Millisecond))
		if !c.Agree() {
			fmt.Printf("DISAGREEMENT: full err=%v, reduced err=%v\n", c.FullErr, c.RedErr)
			os.Exit(1)
		}
		if c.FullErr != nil {
			fmt.Printf("agreed VIOLATION: %v\n", c.FullErr)
			os.Exit(1)
		}
		fmt.Println("agreement: reduced and unreduced runs reach the same verdict (clean)")
		return
	}

	start := time.Now()
	res, err := vstoto.Explore(cfg)
	elapsed := time.Since(start)
	fmt.Printf("explored %d states, %d edges to depth %d in %v (workers=%d, max abstract queue %d, truncated=%t",
		res.States, res.Edges, res.MaxDepth, elapsed.Round(time.Millisecond), *workers, res.MaxQueueLen, res.Truncated)
	if res.Truncated {
		fmt.Printf(", %d edges skipped", res.SkippedEdges)
	}
	if *por {
		fmt.Printf(", %d ample states", res.AmpleStates)
	}
	fmt.Println(")")
	if err != nil {
		fmt.Printf("VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("no violations: every interleaving within the bounds satisfies the Section 6 invariants and the forward simulation")
}
