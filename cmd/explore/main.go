// Command explore runs the bounded exhaustive model checker over the
// spec-level VStoTO-system: every reachable state of the composition (for
// a tiny configuration) is checked against the Section 6 invariants, and
// every transition against the forward-simulation step condition to
// TO-machine. Within the bounds this checks Theorem 6.26 for every
// interleaving, not just sampled ones.
//
// Usage:
//
//	go run ./cmd/explore -n 2 -bcasts 2
//	go run ./cmd/explore -n 2 -bcasts 1 -views 1
//	go run ./cmd/explore -n 2 -bcasts 1 -views 1 -literal-label   # finds the Figure 10 defect
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/types"
	"repro/internal/vstoto"
)

func main() {
	var (
		n         = flag.Int("n", 2, "number of processors")
		p0        = flag.Int("p0", 0, "initial-view size (0 = all)")
		bcasts    = flag.Int("bcasts", 2, "client values to explore")
		views     = flag.Int("views", 0, "number of additional full views to offer createview")
		maxStates = flag.Int("max-states", 2_000_000, "state budget (0 = unlimited)")
		literal   = flag.Bool("literal-label", false,
			"use Figure 10's literal label precondition (reproduces the documented defect)")
	)
	flag.Parse()

	cfg := vstoto.ExploreConfig{
		N:                    *n,
		P0Size:               *p0,
		MaxBcasts:            *bcasts,
		MaxStates:            *maxStates,
		LiteralFigure10Label: *literal,
	}
	for i := 0; i < *views; i++ {
		cfg.Views = append(cfg.Views, types.View{
			ID:  types.ViewID{Epoch: int64(2 + i), Proc: types.ProcID((i + 1) % *n)},
			Set: types.RangeProcSet(*n),
		})
	}

	start := time.Now()
	res, err := vstoto.Explore(cfg)
	elapsed := time.Since(start)
	fmt.Printf("explored %d states, %d edges in %v (max abstract queue %d, truncated=%t)\n",
		res.States, res.Edges, elapsed.Round(time.Millisecond), res.MaxQueueLen, res.Truncated)
	if err != nil {
		fmt.Printf("VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("no violations: every interleaving within the bounds satisfies the Section 6 invariants and the forward simulation")
}
