// Command liverun orchestrates the live-cluster pipelines the CI live
// jobs run.
//
// The default (single-scenario) mode boots N pgcsd daemons on localhost,
// drives them with the load generator, SIGKILLs and restarts one node
// mid-run, then merges every node's delivery logs and fails unless the
// TO conformance checker accepts the merged trace:
//
//	liverun -pgcsd ./bin/pgcsd -n 5 -rate 200 -duration 30s -kill 2 -dir ./liverun-out
//
// -matrix instead runs the chaos-driven scenario matrix: one generated
// fault schedule per scenario kind (stop waves, kill waves, rolling and
// nested isolation, flapping and asymmetric links, leader kills, rolling
// restarts, mixed soak, and the quorum-loss families: majority kill,
// total partition, cascading failure, split-rejoin), each against a
// fresh cluster, each checked for TO conformance, per-node WAL rejoin
// safety, and non-vacuity — quorum-loss scenarios instead prove the
// inverse: delivery flatlined cluster-wide while no primary could exist
// (primary-loss guard) and resumed within -recovery-bound of the final
// heal (bounded recovery):
//
//	liverun -pgcsd ./bin/pgcsd -matrix -n 10 -window 12s -checkpoint-bytes 65536 -dir ./matrix-out
//
// Everything a run produces (configs, WALs, per-incarnation traces,
// daemon logs, metric snapshots, and a replayable scenario.json per
// scenario) lands in -dir, which CI uploads as an artifact on failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/live"
)

func main() {
	var (
		pgcsd    = flag.String("pgcsd", "", "path to the compiled pgcsd binary (required)")
		dir      = flag.String("dir", "liverun-out", "run directory for all artifacts")
		n        = flag.Int("n", 5, "cluster size")
		deltaMS  = flag.Int("delta-ms", 5, "the paper's delta, in milliseconds")
		seed     = flag.Int64("seed", 1, "per-node simulator seed base")
		basePort = flag.Int("base-port", 23600, "first of 2N consecutive localhost ports (keep below the kernel ephemeral range)")
		rate     = flag.Int("rate", 200, "target submissions per second")
		duration = flag.Duration("duration", 30*time.Second, "load window (single-scenario mode)")
		kill     = flag.Int("kill", -1, "node to SIGKILL and restart mid-run (-1 disables, 'auto' = n/2 via -kill-auto)")
		killAuto = flag.Bool("kill-auto", false, "kill node n/2 mid-run")

		matrix    = flag.Bool("matrix", false, "run the chaos-driven scenario matrix instead of one scripted run")
		window    = flag.Duration("window", 12*time.Second, "fault-schedule window per scenario (matrix mode)")
		settle    = flag.Duration("settle", 5*time.Second, "post-heal load interval per scenario (matrix mode)")
		scenarios = flag.String("scenarios", "", "comma-separated scenario kinds (matrix mode; default: all)")
		ckptBytes = flag.Int("checkpoint-bytes", 0, "WAL snapshot/compaction threshold per daemon (0 disables)")

		floorsPath = flag.String("floors", "", "BENCH_baseline.json whose live_floors to enforce on the single-scenario run (throughput floor + p99 latency bound)")

		maxPending    = flag.Int("max-pending", 4096, "per-daemon accepted-but-undelivered submission bound (0 disables backpressure)")
		recoveryBound = flag.Duration("recovery-bound", 12*time.Second, "quorum-loss scenarios: delivery must resume this soon after the final heal")
		lossGrace     = flag.Duration("loss-grace", 750*time.Millisecond, "quorum-loss scenarios: per-epoch grace before the primary-loss flatline is enforced")
	)
	flag.Parse()
	if *pgcsd == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *matrix {
		var kinds []live.ScenarioKind
		if *scenarios != "" {
			for _, s := range strings.Split(*scenarios, ",") {
				k, err := live.ParseScenarioKind(strings.TrimSpace(s))
				if err != nil {
					log.Fatal(err)
				}
				kinds = append(kinds, k)
			}
		}
		res, err := live.RunMatrix(live.MatrixOptions{
			Dir:             *dir,
			PgcsdPath:       *pgcsd,
			N:               *n,
			Delta:           time.Duration(*deltaMS) * time.Millisecond,
			Seed:            *seed,
			BasePort:        *basePort,
			Rate:            *rate,
			Window:          *window,
			Settle:          *settle,
			CheckpointBytes: *ckptBytes,
			MaxPending:      *maxPending,
			LossGrace:       *lossGrace,
			RecoveryBound:   *recoveryBound,
			Kinds:           kinds,
			Logf:            log.Printf,
		})
		if res != nil {
			for _, sr := range res.Scenarios {
				status := "PASS"
				if !sr.Passed() {
					status = "FAIL"
				}
				extra := ""
				if sr.Scenario.Kind.QuorumLoss() {
					extra = fmt.Sprintf("  loss_epochs=%d primary_loss=%t recovery=%t recovery_ms=%d hard_failures=%d",
						len(sr.Scenario.LossEpochs), sr.PrimaryLossOK, sr.RecoveryOK, sr.RecoveryMS, sr.HardFailures)
				}
				fmt.Printf("%-18s %s  deliveries=%d order=%d restarts=%d injected=%v%s\n",
					sr.Scenario.Kind, status, sr.Entry.Deliveries, sr.OrderLen, sr.Restarts, sr.Injected, extra)
			}
			fmt.Printf("matrix: %d scenarios, %d failed\n", len(res.Scenarios), len(res.Failed))
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	killNode := *kill
	if *killAuto {
		killNode = *n / 2
	}
	res, err := live.Run(live.RunOptions{
		Dir:             *dir,
		PgcsdPath:       *pgcsd,
		N:               *n,
		Delta:           time.Duration(*deltaMS) * time.Millisecond,
		Seed:            *seed,
		BasePort:        *basePort,
		Rate:            *rate,
		Duration:        *duration,
		KillNode:        killNode,
		CheckpointBytes: *ckptBytes,
		Logf:            log.Printf,
	})
	if res != nil {
		lat := res.Entry.DeliveryLatency
		fmt.Printf("throughput: %.1f deliveries/sec (%d bcasts, %d deliveries)\n",
			res.Entry.DeliveriesPerSec, res.Entry.Bcasts, res.Entry.Deliveries)
		fmt.Printf("delivery latency: p50 %v  p99 %v  max %v  (%d samples)\n",
			time.Duration(lat.P50NS), time.Duration(lat.P99NS), time.Duration(lat.MaxNS), lat.Count)
		fmt.Printf("merged TO order: %d values; conformance ok: %v\n", res.OrderLen, res.CheckOK)
		if err == nil && *floorsPath != "" {
			if ferr := enforceFloors(*floorsPath, res, *rate, *n); ferr != nil {
				log.Fatal(ferr)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// enforceFloors applies the BENCH_baseline.json live floors to a completed
// single-scenario run: delivered throughput (summed over nodes) must be at
// least RateFraction of the offered rate × n, and p99 submit→delivery
// latency must stay under MaxP99MS. The floors ride in the baseline file so
// the live gate regenerates together with the simulated baseline.
func enforceFloors(path string, res *live.RunResult, rate, n int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("floors: %w", err)
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("floors: parsing %s: %w", path, err)
	}
	f := rep.Live
	if f.RateFraction <= 0 && f.MaxP99MS <= 0 {
		return fmt.Errorf("floors: %s carries no live_floors", path)
	}
	minRate := f.RateFraction * float64(rate) * float64(n)
	p99MS := float64(res.Entry.DeliveryLatency.P99NS) / float64(time.Millisecond)
	fmt.Printf("floors: throughput %.1f/s (floor %.1f/s)  p99 %.1fms (bound %.1fms)\n",
		res.Entry.DeliveriesPerSec, minRate, p99MS, f.MaxP99MS)
	if f.RateFraction > 0 && res.Entry.DeliveriesPerSec < minRate {
		return fmt.Errorf("floors: throughput %.1f deliveries/sec under the floor %.1f (rate_fraction %.2f x %d/s x %d nodes)",
			res.Entry.DeliveriesPerSec, minRate, f.RateFraction, rate, n)
	}
	if f.MaxP99MS > 0 && p99MS > f.MaxP99MS {
		return fmt.Errorf("floors: p99 delivery latency %.1fms over the bound %.1fms", p99MS, f.MaxP99MS)
	}
	return nil
}
