// Command liverun orchestrates the full live-cluster pipeline the CI
// live job runs: boot N pgcsd daemons on localhost, drive them with the
// load generator, SIGKILL and restart one node mid-run, then merge every
// node's delivery logs and fail unless the TO conformance checker
// accepts the merged trace.
//
//	liverun -pgcsd ./bin/pgcsd -n 5 -rate 200 -duration 30s -kill 2 -dir ./liverun-out
//
// Everything the run produces (configs, WALs, per-incarnation traces,
// daemon logs, metric snapshots, report.json) lands in -dir, which CI
// uploads as an artifact on failure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/live"
)

func main() {
	var (
		pgcsd    = flag.String("pgcsd", "", "path to the compiled pgcsd binary (required)")
		dir      = flag.String("dir", "liverun-out", "run directory for all artifacts")
		n        = flag.Int("n", 5, "cluster size")
		deltaMS  = flag.Int("delta-ms", 5, "the paper's delta, in milliseconds")
		seed     = flag.Int64("seed", 1, "per-node simulator seed base")
		basePort = flag.Int("base-port", 42600, "first of 2N consecutive localhost ports")
		rate     = flag.Int("rate", 200, "target submissions per second")
		duration = flag.Duration("duration", 30*time.Second, "load window")
		kill     = flag.Int("kill", -1, "node to SIGKILL and restart mid-run (-1 disables, 'auto' = n/2 via -kill-auto)")
		killAuto = flag.Bool("kill-auto", false, "kill node n/2 mid-run")
	)
	flag.Parse()
	if *pgcsd == "" {
		flag.Usage()
		os.Exit(2)
	}
	killNode := *kill
	if *killAuto {
		killNode = *n / 2
	}

	res, err := live.Run(live.RunOptions{
		Dir:       *dir,
		PgcsdPath: *pgcsd,
		N:         *n,
		Delta:     time.Duration(*deltaMS) * time.Millisecond,
		Seed:      *seed,
		BasePort:  *basePort,
		Rate:      *rate,
		Duration:  *duration,
		KillNode:  killNode,
		Logf:      log.Printf,
	})
	if res != nil {
		lat := res.Entry.DeliveryLatency
		fmt.Printf("throughput: %.1f deliveries/sec (%d bcasts, %d deliveries)\n",
			res.Entry.DeliveriesPerSec, res.Entry.Bcasts, res.Entry.Deliveries)
		fmt.Printf("delivery latency: p50 %v  p99 %v  max %v  (%d samples)\n",
			time.Duration(lat.P50NS), time.Duration(lat.P99NS), time.Duration(lat.MaxNS), lat.Count)
		fmt.Printf("merged TO order: %d values; conformance ok: %v\n", res.OrderLen, res.CheckOK)
	}
	if err != nil {
		log.Fatal(err)
	}
}
