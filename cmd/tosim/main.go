// Command tosim runs one scenario of the TO service on the deterministic
// simulator and reports what happened: views formed, values ordered and
// delivered, property measurements against the analytic bounds, and
// (optionally) the full timed external trace as JSON lines for consumption
// by vscheck.
//
// Usage examples:
//
//	go run ./cmd/tosim -n 5 -msgs 10
//	go run ./cmd/tosim -n 6 -partition 0,1,2 -cut 50ms -heal 500ms -msgs 8
//	go run ./cmd/tosim -n 5 -partition 0,1,2 -trace trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

func main() {
	var (
		n         = flag.Int("n", 5, "number of processors")
		seed      = flag.Int64("seed", 1, "simulation seed")
		delta     = flag.Duration("delta", time.Millisecond, "good-channel delivery bound δ")
		msgs      = flag.Int("msgs", 10, "number of values to broadcast (round-robin)")
		partition = flag.String("partition", "", "comma-separated processor ids to isolate as one component (e.g. 0,1,2)")
		cutAt     = flag.Duration("cut", 50*time.Millisecond, "when to apply the partition")
		healAt    = flag.Duration("heal", 0, "when to heal (0 = never)")
		horizon   = flag.Duration("horizon", 3*time.Second, "virtual run length")
		traceOut  = flag.String("trace", "", "write the timed external trace as JSON lines to this file")
		verbose   = flag.Bool("v", false, "print every delivery")
	)
	flag.Parse()

	c := stack.NewCluster(stack.Options{Seed: *seed, N: *n, Delta: *delta})

	var q types.ProcSet
	if *partition != "" {
		ids, err := parseIDs(*partition)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -partition: %v\n", err)
			os.Exit(2)
		}
		q = types.NewProcSet(ids...)
		var rest []types.ProcID
		for _, p := range c.Procs.Members() {
			if !q.Contains(p) {
				rest = append(rest, p)
			}
		}
		other := types.NewProcSet(rest...)
		c.Sim.At(sim.Time(*cutAt), func() {
			fmt.Printf("%v: partition %v | %v\n", c.Sim.Now(), q, other)
			c.Oracle.Partition(c.Procs, q, other)
		})
		if *healAt > 0 {
			c.Sim.At(sim.Time(*healAt), func() {
				fmt.Printf("%v: heal\n", c.Sim.Now())
				c.Oracle.Heal(c.Procs)
			})
		}
	}

	for i := 0; i < *msgs; i++ {
		i := i
		at := time.Duration(10+i*25) * time.Millisecond
		c.Sim.At(sim.Time(at), func() {
			p := c.Procs.Members()[i%*n]
			c.Bcast(p, types.Value(fmt.Sprintf("msg-%d", i)))
		})
	}

	if err := c.Sim.Run(sim.Time(*horizon)); err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nsimulated %v in %d events; network: %+v\n",
		c.Sim.Now(), c.Sim.Steps(), c.Net.Stats())
	fmt.Println("\nfinal views:")
	for _, p := range c.Procs.Members() {
		v, ok := c.Node(p).VS().View()
		if !ok {
			fmt.Printf("  %v: ⊥\n", p)
		} else {
			fmt.Printf("  %v: %v\n", p, v)
		}
	}
	fmt.Println("\ndeliveries:")
	for _, p := range c.Procs.Members() {
		ds := c.Deliveries(p)
		fmt.Printf("  %v: %d values", p, len(ds))
		if *verbose {
			for _, d := range ds {
				fmt.Printf("  [%v %q from %v]", d.Time, string(d.Value), d.From)
			}
		}
		fmt.Println()
	}

	if !q.IsEmpty() && *healAt == 0 {
		b := c.Cfg.AnalyticB(q.Size())
		d := c.Cfg.AnalyticDImpl(q.Size())
		m := props.MeasureVS(c.Log, q, sim.Time(*cutAt))
		fmt.Printf("\nVS measurement for %v after the cut:\n", q)
		fmt.Printf("  converged=%t l'=%v (bound b=%v) safe-lag=%v (bound d_impl=%v)\n",
			m.Converged, m.LPrime, b, m.MaxSafeLag, d)
		to := props.MeasureTO(c.Log, q, sim.Time(*cutAt), m.LPrime)
		fmt.Printf("  TO send-lag=%v relay-lag=%v values=%d incomplete=%d\n",
			to.MaxSendLag, to.MaxRelayLag, to.ValuesMeasured, to.Incomplete)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create trace file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := c.Log.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s\n", c.Log.Len(), *traceOut)
	}
}

func parseIDs(s string) ([]types.ProcID, error) {
	var out []types.ProcID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("id %q: %w", part, err)
		}
		out = append(out, types.ProcID(id))
	}
	return out, nil
}
