// Benchmarks: one per experiment table (E1–E8; see DESIGN.md and
// EXPERIMENTS.md) plus micro-benchmarks of the load-bearing substrates.
// The experiment benches drive the same harness as cmd/experiments, so
// `go test -bench=.` regenerates every measured result; custom metrics
// surface the headline numbers (stabilization time, latency, throughput).
package pgcs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/props"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// reportTable fails the benchmark if the experiment's claim did not
// validate, and reports a headline metric.
func reportTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	if len(t.Failures) > 0 {
		b.Fatalf("%s failed validation:\n%v", t.ID, t.Failures)
	}
}

func BenchmarkE1_TOStabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E1(int64(i+1)))
	}
}

func BenchmarkE2_VSStabilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E2(int64(i+1)))
	}
}

func BenchmarkE3_PhaseDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E3(int64(i+1)))
	}
}

func BenchmarkE4_AnalyticBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E4(int64(i+1)))
	}
}

func BenchmarkE5_BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E5(int64(i+1)))
	}
}

func BenchmarkE6_SafetyCheckThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E6(int64(i+1)))
	}
}

func BenchmarkE7_VSConformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E7(int64(i+1)))
	}
}

func BenchmarkE8_RSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E8(int64(i+1)))
	}
}

func BenchmarkE9_CollectWindowAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E9(int64(i+1)))
	}
}

func BenchmarkE10_OneRoundMembership(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E10(int64(i+1)))
	}
}

func BenchmarkE11_TokenCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E11(int64(i+1)))
	}
}

func BenchmarkE12_PrimaryModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E12(int64(i+1)))
	}
}

func BenchmarkE13_ModelChecking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E13(int64(i+1)))
	}
}

func BenchmarkE14_CrashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportTable(b, experiments.E14(int64(i+1)))
	}
}

// BenchmarkStackThroughput measures end-to-end ordered-broadcast
// throughput of the full stack (values fully delivered at every node per
// simulated second), for several cluster sizes.
func BenchmarkStackThroughput(b *testing.B) {
	for _, n := range []int{3, 5, 9} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			c := stack.NewCluster(stack.Options{Seed: 1, N: n, Delta: time.Millisecond})
			if err := c.Sim.RunFor(50 * time.Millisecond); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			sent := 0
			for i := 0; i < b.N; i++ {
				c.Bcast(types.ProcID(i%n), types.Value(fmt.Sprintf("v%d", i)))
				sent++
				if sent%64 == 0 {
					if err := c.Sim.RunFor(200 * time.Millisecond); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := c.Sim.RunFor(2 * time.Second); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			delivered := len(c.Deliveries(0))
			if delivered < b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
			perSec := float64(delivered) / (float64(c.Sim.Now()) / float64(time.Second))
			b.ReportMetric(perSec, "msgs/simsec")
		})
	}
}

// BenchmarkSteadyStateLatency measures the bcast→delivered-everywhere
// latency of a single value in an otherwise idle, stable group.
func BenchmarkSteadyStateLatency(b *testing.B) {
	for _, n := range []int{3, 5, 9} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var total time.Duration
			c := stack.NewCluster(stack.Options{Seed: 1, N: n, Delta: time.Millisecond})
			if err := c.Sim.RunFor(50 * time.Millisecond); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				start := c.Sim.Now()
				c.Bcast(0, types.Value(fmt.Sprintf("v%d", i)))
				want := i + 1
				for {
					if err := c.Sim.RunFor(time.Millisecond); err != nil {
						b.Fatal(err)
					}
					done := true
					for _, p := range c.Procs.Members() {
						if len(c.Deliveries(p)) < want {
							done = false
							break
						}
					}
					if done {
						break
					}
				}
				total += c.Sim.Now().Sub(start)
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "simms/msg")
		})
	}
}

// BenchmarkViewChange measures the virtual time to merge two halves after
// a heal — the stabilization cost an application pays per partition cycle.
func BenchmarkViewChange(b *testing.B) {
	for _, n := range []int{4, 8} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				c := stack.NewCluster(stack.Options{Seed: int64(i + 1), N: n, Delta: time.Millisecond})
				left := types.NewProcSet(c.Procs.Members()[:n/2]...)
				right := types.NewProcSet(c.Procs.Members()[n/2:]...)
				c.Sim.At(sim.Time(20*time.Millisecond), func() {
					c.Oracle.Partition(c.Procs, left, right)
				})
				var heal sim.Time
				c.Sim.At(sim.Time(200*time.Millisecond), func() {
					c.Oracle.Heal(c.Procs)
					heal = c.Sim.Now()
				})
				if err := c.Sim.Run(sim.Time(2 * time.Second)); err != nil {
					b.Fatal(err)
				}
				m := props.MeasureVS(c.Log, c.Procs, heal)
				if !m.Converged {
					b.Fatalf("no merge at iteration %d", i)
				}
				total += m.LPrime
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "simms/merge")
		})
	}
}

// BenchmarkSimulator measures the raw event-queue throughput of the
// discrete-event core.
func BenchmarkSimulator(b *testing.B) {
	s := sim.New(1)
	var fire func()
	count := 0
	fire = func() {
		count++
		s.After(time.Microsecond, fire)
	}
	s.Defer(fire)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunFor(time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}
