// Package pgcs is the public face of this repository: a partitionable
// view-synchronous group communication service (VS), a totally ordered
// broadcast service built on it (TO, via the paper's VStoTO algorithm),
// and a sequentially consistent replicated memory built on that —
// a complete, executable reproduction of Fekete, Lynch and Shvartsman,
// "Specifying and Using a Partitionable Group Communication Service"
// (PODC 1997).
//
// Two ways to run the service:
//
//   - Simulated (NewSimCluster): the whole system runs on a deterministic
//     discrete-event simulator with an explicit failure oracle. This is
//     what the tests, benchmarks and experiments use; runs are exactly
//     reproducible from the seed.
//
//   - Live (StartLiveCluster): the same protocol paced against the wall
//     clock, with channel-based delivery streams — the shape an
//     application embedding the service would use.
//
// The formal artifacts (the TO-machine and VS-machine specification
// automata, the trace checkers, the Section 6 invariants and forward
// simulation) live in the internal packages and are exercised by the test
// suite; see DESIGN.md for the map.
package pgcs

import (
	"time"

	"repro/internal/props"
	"repro/internal/rsm"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/types"
)

// Re-exported ground types, so client code needs only this package.
type (
	// ProcID identifies a processor (the paper's set P).
	ProcID = types.ProcID
	// Value is a client data value (the paper's set A).
	Value = types.Value
	// View is a group view: identifier plus membership.
	View = types.View
	// ViewID is a view identifier (the paper's totally ordered set G).
	ViewID = types.ViewID
	// ProcSet is an immutable set of processors.
	ProcSet = types.ProcSet
	// QuorumSystem decides which views are primary.
	QuorumSystem = types.QuorumSystem
	// Delivery is one totally ordered delivery.
	Delivery = stack.Delivery
	// Time is a virtual-time instant.
	Time = sim.Time
)

// NewProcSet builds a processor set.
func NewProcSet(ids ...ProcID) ProcSet { return types.NewProcSet(ids...) }

// Majorities returns the default quorum system over an n-processor
// universe.
func Majorities(n int) QuorumSystem {
	return types.Majorities{Universe: types.RangeProcSet(n)}
}

// Config configures a cluster.
type Config struct {
	// N is the number of processors (identifiers 0..N-1).
	N int
	// Seed drives all nondeterminism; equal seeds give equal runs.
	Seed int64
	// Delta is the good-channel delivery bound δ (default 1ms).
	Delta time.Duration
	// InitialMembers is how many processors start in the initial view
	// (default: all).
	InitialMembers int
	// Quorums overrides the majority quorum system.
	Quorums QuorumSystem
}

// SimCluster is a deterministic, simulator-backed TO service instance with
// failure injection.
type SimCluster struct {
	c *stack.Cluster
}

// NewSimCluster builds a simulated cluster.
func NewSimCluster(cfg Config) *SimCluster {
	return &SimCluster{c: stack.NewCluster(stack.Options{
		Seed:    cfg.Seed,
		N:       cfg.N,
		P0Size:  cfg.InitialMembers,
		Delta:   cfg.Delta,
		Quorums: cfg.Quorums,
	})}
}

// Broadcast submits a value at processor p; it will be delivered to every
// connected processor in one common total order.
func (s *SimCluster) Broadcast(p ProcID, a Value) { s.c.Bcast(p, a) }

// Deliveries returns everything delivered at p so far, in order.
func (s *SimCluster) Deliveries(p ProcID) []Delivery { return s.c.Deliveries(p) }

// Run advances the simulation by d of virtual time.
func (s *SimCluster) Run(d time.Duration) error { return s.c.Sim.RunFor(d) }

// Now returns the current virtual time.
func (s *SimCluster) Now() Time { return s.c.Sim.Now() }

// Partition splits the universe into isolated components.
func (s *SimCluster) Partition(components ...ProcSet) {
	s.c.Oracle.Partition(s.c.Procs, components...)
}

// Heal reconnects everything.
func (s *SimCluster) Heal() { s.c.Oracle.Heal(s.c.Procs) }

// CurrentView returns p's current view (ok=false before p joins any view).
func (s *SimCluster) CurrentView(p ProcID) (View, bool) {
	return s.c.Node(p).VS().View()
}

// Procs returns the processor universe.
func (s *SimCluster) Procs() ProcSet { return s.c.Procs }

// EventLog exposes the timed external trace of the run, consumable by the
// property evaluators in internal/props and the vscheck tool.
func (s *SimCluster) EventLog() *props.Log { return s.c.Log }

// Stack exposes the underlying cluster for advanced use (experiments).
func (s *SimCluster) Stack() *stack.Cluster { return s.c }

// Op is one memory operation as seen by a conflict relation: Kind ("w" or
// "r"), Key, Val, and the submitter-local Nonce.
type Op = rsm.Op

// ConflictFunc declares which memory operations do not commute; see
// DefaultConflict and AlwaysConflict, and DESIGN.md §15 for the soundness
// contract.
type ConflictFunc = rsm.ConflictFunc

// DefaultConflict is the standard relation for the key-value memory: reads
// commute with reads, operations on different keys commute, same-key pairs
// involving a write conflict.
func DefaultConflict(a, b Op) bool { return rsm.DefaultConflict(a, b) }

// AlwaysConflict declares every pair conflicting — the conservative,
// strictly serial legacy mode.
func AlwaysConflict(a, b Op) bool { return rsm.AlwaysConflict(a, b) }

// MemoryOptions tunes the replicated memory's apply stage. The zero value
// is the serial reference configuration.
type MemoryOptions struct {
	// Conflict is the commutativity relation the batch planner consults
	// (nil: DefaultConflict). It must be sound — if Conflict(a,b) and
	// Conflict(b,a) are both false, applying a and b in either order must
	// yield identical state and observations — and identical at every
	// replica.
	Conflict ConflictFunc
	// Workers is the apply worker-goroutine count: 1 or 0 applies serially;
	// n > 1 fans each antichain of commuting operations across n
	// goroutines; negative means all cores. Replica state and ack order
	// are byte-identical at every setting.
	Workers int
}

// Memory attaches a sequentially consistent replicated key-value memory
// (the paper's footnote 3 application) to the cluster.
func (s *SimCluster) Memory() *ReplicatedMemory {
	return &ReplicatedMemory{m: rsm.New(s.c)}
}

// MemoryWithOptions is Memory with apply-stage tuning.
func (s *SimCluster) MemoryWithOptions(opts MemoryOptions) *ReplicatedMemory {
	m := rsm.New(s.c)
	m.SetConflict(opts.Conflict)
	if opts.Workers != 0 {
		m.SetWorkers(opts.Workers)
	}
	return &ReplicatedMemory{m: m}
}

// ReplicatedMemory is a sequentially consistent replicated key-value store.
type ReplicatedMemory struct {
	m *rsm.Memory
}

// Write submits an update at p; onApplied (optional) runs when the update
// reaches p's replica.
func (r *ReplicatedMemory) Write(p ProcID, key, val string, onApplied func()) {
	r.m.Write(p, key, val, onApplied)
}

// Read returns p's local replica value (sequentially consistent).
func (r *ReplicatedMemory) Read(p ProcID, key string) string { return r.m.Read(p, key) }

// ReadAtomic routes the read through the total order (atomic semantics).
func (r *ReplicatedMemory) ReadAtomic(p ProcID, key string, onValue func(string)) {
	r.m.ReadAtomic(p, key, onValue)
}

// Replica returns a copy of p's current replica contents.
func (r *ReplicatedMemory) Replica(p ProcID) map[string]string { return r.m.Replica(p) }

// CheckCoherence verifies all replicas applied a common operation prefix.
func (r *ReplicatedMemory) CheckCoherence() error { return r.m.CheckCoherence() }

// LiveCluster is the wall-clock-paced service.
type LiveCluster = runtime.Runtime

// LiveOptions configures StartLiveCluster.
type LiveOptions struct {
	Config Config
	// Speed is virtual time advanced per wall time (default 1.0).
	Speed float64
}

// StartLiveCluster launches a live cluster; call Stop when done.
func StartLiveCluster(opts LiveOptions) *LiveCluster {
	return runtime.Start(runtime.Options{
		Cluster: stack.Options{
			Seed:    opts.Config.Seed,
			N:       opts.Config.N,
			P0Size:  opts.Config.InitialMembers,
			Delta:   opts.Config.Delta,
			Quorums: opts.Config.Quorums,
		},
		Speed: opts.Speed,
	})
}
