package pgcs_test

import (
	"fmt"
	"time"

	"repro"
)

// ExampleNewSimCluster shows the basic flow: broadcast values at different
// nodes and read back one common total order.
func ExampleNewSimCluster() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 3, Seed: 1, Delta: time.Millisecond})
	cluster.Broadcast(0, "first")
	cluster.Broadcast(2, "second")
	if err := cluster.Run(500 * time.Millisecond); err != nil {
		panic(err)
	}
	for _, d := range cluster.Deliveries(1) {
		fmt.Printf("%s from %v\n", string(d.Value), d.From)
	}
	// The service picks one total order (here the token reached node 2's
	// submission first); every node sees the same one.
	// Output:
	// second from p2
	// first from p0
}

// ExampleSimCluster_Partition shows partition semantics: the quorum side
// keeps ordering, the minority stalls, and healing reconciles both
// histories into one order.
func ExampleSimCluster_Partition() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 5, Seed: 1, Delta: time.Millisecond})
	cluster.Partition(pgcs.NewProcSet(0, 1, 2), pgcs.NewProcSet(3, 4))
	if err := cluster.Run(200 * time.Millisecond); err != nil {
		panic(err)
	}
	cluster.Broadcast(0, "from-quorum")
	cluster.Broadcast(4, "from-minority")
	if err := cluster.Run(500 * time.Millisecond); err != nil {
		panic(err)
	}
	fmt.Printf("during partition, node 4 delivered %d values\n", len(cluster.Deliveries(4)))
	cluster.Heal()
	if err := cluster.Run(2 * time.Second); err != nil {
		panic(err)
	}
	fmt.Printf("after heal, node 4 delivered %d values\n", len(cluster.Deliveries(4)))
	// Output:
	// during partition, node 4 delivered 0 values
	// after heal, node 4 delivered 2 values
}

// ExampleSimCluster_Memory shows the footnote-3 application: a
// sequentially consistent replicated key-value memory over the total
// order.
func ExampleSimCluster_Memory() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 3, Seed: 1, Delta: time.Millisecond})
	mem := cluster.Memory()
	mem.Write(0, "greeting", "hello", nil)
	if err := cluster.Run(500 * time.Millisecond); err != nil {
		panic(err)
	}
	fmt.Println(mem.Read(2, "greeting"))
	// Output:
	// hello
}
