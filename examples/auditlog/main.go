// Command auditlog uses the live (wall-clock-paced, channel-based) face of
// the library: several producer goroutines append entries to a shared
// audit log through the totally ordered broadcast service, while a
// consumer goroutine tails the stream of ordered deliveries. The total
// order gives every node the same log; per-sender FIFO gives each producer
// a coherent story within it.
//
// Run with: go run ./examples/auditlog
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

func main() {
	live := pgcs.StartLiveCluster(pgcs.LiveOptions{
		Config: pgcs.Config{N: 3, Seed: 99, Delta: time.Millisecond},
		Speed:  50, // 50× real time: a ~15ms-per-round protocol becomes visible in ~2s
	})
	defer live.Stop()

	stream := live.Subscribe()

	// Consumer: print node 0's view of the log as it grows.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		idx := 0
		for d := range stream {
			if d.Node != 0 {
				continue // one node's view is enough for display; all agree
			}
			idx++
			fmt.Printf("log[%d] (from %v at %v): %s\n", idx, d.From, d.At, string(d.Value))
			if idx == 9 {
				return
			}
		}
	}()

	// Three producers appending audit entries concurrently.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 3; i++ {
				live.Bcast(pgcs.ProcID(w), pgcs.Value(fmt.Sprintf("user%d action#%d", w, i)))
				time.Sleep(30 * time.Millisecond)
			}
		}()
	}

	wg.Wait()

	// Verify all three nodes converged on the identical log.
	time.Sleep(200 * time.Millisecond)
	ref := live.Deliveries(0)
	for p := pgcs.ProcID(1); p < 3; p++ {
		ds := live.Deliveries(p)
		if len(ds) != len(ref) {
			fmt.Printf("node %v still catching up (%d/%d)\n", p, len(ds), len(ref))
			continue
		}
		for i := range ds {
			if ds[i].Value != ref[i].Value {
				panic("logs diverged — total order violated")
			}
		}
	}
	fmt.Println("\nall nodes hold the identical audit log — total order verified")
}
