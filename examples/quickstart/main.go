// Command quickstart is the smallest complete use of the library: start a
// five-node totally ordered broadcast service, submit values at different
// nodes, partition the network, heal it, and show that every node ends up
// with the identical total order.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 5, Seed: 1, Delta: time.Millisecond})

	fmt.Println("== phase 1: stable group, three broadcasts ==")
	cluster.Broadcast(0, "alpha")
	cluster.Broadcast(2, "beta")
	cluster.Broadcast(4, "gamma")
	must(cluster.Run(500 * time.Millisecond))
	printOrders(cluster)

	fmt.Println("\n== phase 2: partition {0,1,2} | {3,4}; majority continues ==")
	majority := pgcs.NewProcSet(0, 1, 2)
	minority := pgcs.NewProcSet(3, 4)
	cluster.Partition(majority, minority)
	must(cluster.Run(200 * time.Millisecond)) // let views reform
	cluster.Broadcast(1, "delta (sent in majority)")
	cluster.Broadcast(3, "epsilon (sent in minority — stalls)")
	must(cluster.Run(500 * time.Millisecond))
	printOrders(cluster)

	fmt.Println("\n== phase 3: heal; the minority catches up and epsilon is recovered ==")
	cluster.Heal()
	must(cluster.Run(2 * time.Second))
	printOrders(cluster)

	fmt.Println("\nviews at the end:")
	for _, p := range cluster.Procs().Members() {
		v, _ := cluster.CurrentView(p)
		fmt.Printf("  %v: %v\n", p, v)
	}
}

func printOrders(c *pgcs.SimCluster) {
	for _, p := range c.Procs().Members() {
		fmt.Printf("  %v delivered:", p)
		for _, d := range c.Deliveries(p) {
			fmt.Printf("  %q", string(d.Value))
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
