// Command replicated-kv demonstrates the application of the paper's
// footnote 3: a sequentially consistent replicated key-value memory built
// on the totally ordered broadcast service. Reads are local and immediate;
// writes are broadcast and applied at every replica in the common total
// order, so replicas never diverge — even across a partition and merge.
//
// Run with: go run ./examples/replicated-kv
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 5, Seed: 7, Delta: time.Millisecond})
	mem := cluster.Memory()

	fmt.Println("== write at node 0, read everywhere ==")
	mem.Write(0, "config/leader", "node-0", func() {
		fmt.Println("  write acknowledged at node 0")
	})
	must(cluster.Run(300 * time.Millisecond))
	for _, p := range cluster.Procs().Members() {
		fmt.Printf("  %v reads config/leader = %q\n", p, mem.Read(p, "config/leader"))
	}

	fmt.Println("\n== concurrent writers: the total order decides, identically everywhere ==")
	mem.Write(1, "counter", "from-node-1", nil)
	mem.Write(3, "counter", "from-node-3", nil)
	mem.Write(2, "counter", "from-node-2", nil)
	must(cluster.Run(300 * time.Millisecond))
	for _, p := range cluster.Procs().Members() {
		fmt.Printf("  %v reads counter = %q\n", p, mem.Read(p, "counter"))
	}

	fmt.Println("\n== partition: the minority replica serves stale reads, writes stall ==")
	cluster.Partition(pgcs.NewProcSet(0, 1, 2), pgcs.NewProcSet(3, 4))
	must(cluster.Run(200 * time.Millisecond))
	mem.Write(0, "config/leader", "node-0-bis", nil)
	mem.Write(4, "minority-key", "written-in-minority", nil)
	must(cluster.Run(500 * time.Millisecond))
	fmt.Printf("  majority node 1 reads config/leader = %q (fresh)\n", mem.Read(1, "config/leader"))
	fmt.Printf("  minority node 4 reads config/leader = %q (stale but consistent)\n", mem.Read(4, "config/leader"))
	fmt.Printf("  minority node 4 reads minority-key  = %q (its own write is unconfirmed)\n", mem.Read(4, "minority-key"))

	fmt.Println("\n== heal: the minority write is recovered through state exchange ==")
	cluster.Heal()
	must(cluster.Run(2 * time.Second))
	for _, p := range cluster.Procs().Members() {
		fmt.Printf("  %v reads minority-key = %q\n", p, mem.Read(p, "minority-key"))
	}
	if err := mem.CheckCoherence(); err != nil {
		panic(err)
	}
	fmt.Println("\nreplica coherence check: OK (all replicas applied one common prefix)")

	fmt.Println("\n== atomic read (routed through the total order) ==")
	mem.ReadAtomic(2, "config/leader", func(v string) {
		fmt.Printf("  atomic read at node 2 observed %q\n", v)
	})
	must(cluster.Run(300 * time.Millisecond))
	mem.Read(0, "") // pump
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
