// Command loadbalance demonstrates the view-aware work partitioning the
// paper's conclusion points to (dynamic load balancing over group
// communication): tasks announced through the totally ordered broadcast
// are claimed by the member whose rank in the current view matches the
// task's hash, so work re-partitions automatically when the membership
// changes — no coordinator, no handoff protocol.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/loadbalance"
	"repro/internal/types"
)

func main() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 4, Seed: 11, Delta: time.Millisecond})
	balancer := loadbalance.New(cluster.Stack())

	// Re-evaluate ownership every 20ms of virtual time.
	stack := cluster.Stack()
	var pump func()
	pump = func() {
		balancer.Pump()
		stack.Sim.After(20*time.Millisecond, pump)
	}
	stack.Sim.After(20*time.Millisecond, pump)

	fmt.Println("== submit 12 tasks into a 4-node group ==")
	for i := 0; i < 12; i++ {
		balancer.Submit(types.ProcID(i%4), loadbalance.Task{
			Name: fmt.Sprintf("render-frame-%02d", i),
			Work: 30 * time.Millisecond,
		})
	}
	must(cluster.Run(500 * time.Millisecond))
	report(balancer)

	fmt.Println("\n== node 3 is partitioned away; its tasks are re-owned ==")
	cluster.Partition(pgcs.NewProcSet(0, 1, 2), pgcs.NewProcSet(3))
	for i := 12; i < 20; i++ {
		balancer.Submit(types.ProcID(i%3), loadbalance.Task{
			Name: fmt.Sprintf("render-frame-%02d", i),
			Work: 30 * time.Millisecond,
		})
	}
	must(cluster.Run(time.Second))
	report(balancer)

	fmt.Println("\n== heal: node 3 rejoins and picks up its share again ==")
	cluster.Heal()
	for i := 20; i < 28; i++ {
		balancer.Submit(types.ProcID(i%4), loadbalance.Task{
			Name: fmt.Sprintf("render-frame-%02d", i),
			Work: 30 * time.Millisecond,
		})
	}
	must(cluster.Run(2 * time.Second))
	report(balancer)

	if balancer.AllDone() {
		fmt.Println("\nall 28 tasks completed with an agreed winner each — no task lost across two membership changes")
	}
}

func report(b *loadbalance.Balancer) {
	perOwner := map[types.ProcID]int{}
	for task, owner := range b.Winner {
		_ = task
		perOwner[owner]++
	}
	fmt.Printf("  completions so far by owner: ")
	for p := types.ProcID(0); p < 4; p++ {
		fmt.Printf("%v:%d  ", p, perOwner[p])
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
