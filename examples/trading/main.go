// Command trading mirrors the paper's motivating deployments (the stock
// exchanges and air-traffic sectors of Section 1): several trading desks
// submit orders against a replicated book; the totally ordered broadcast
// guarantees every replica executes the same matches in the same order,
// and a network partition degrades the minority site to read-only instead
// of letting it diverge.
//
// Run with: go run ./examples/trading
package main

import (
	"fmt"
	"strings"
	"time"

	"repro"
)

// The book is driven entirely by the delivery stream: an order is a value
// "BUY|qty" or "SELL|qty"; each replica matches greedily against the
// resting quantity. Because every replica sees the same total order, all
// books stay identical without any further coordination.
type book struct {
	restingBuy, restingSell int
	trades                  int
}

func (b *book) apply(v pgcs.Value) {
	parts := strings.SplitN(string(v), "|", 2)
	var qty int
	fmt.Sscanf(parts[1], "%d", &qty)
	switch parts[0] {
	case "BUY":
		matched := min(qty, b.restingSell)
		b.restingSell -= matched
		b.restingBuy += qty - matched
		b.trades += matched
	case "SELL":
		matched := min(qty, b.restingBuy)
		b.restingBuy -= matched
		b.restingSell += qty - matched
		b.trades += matched
	}
}

func main() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 5, Seed: 2026, Delta: time.Millisecond})
	books := make(map[pgcs.ProcID]*book)
	applied := make(map[pgcs.ProcID]int)
	for _, p := range cluster.Procs().Members() {
		books[p] = &book{}
	}
	pump := func() {
		for _, p := range cluster.Procs().Members() {
			ds := cluster.Deliveries(p)
			for ; applied[p] < len(ds); applied[p]++ {
				books[p].apply(ds[applied[p]].Value)
			}
		}
	}

	fmt.Println("== continuous trading across five sites ==")
	orders := []struct {
		desk pgcs.ProcID
		v    string
	}{
		{0, "BUY|100"}, {3, "SELL|60"}, {1, "SELL|70"}, {4, "BUY|25"}, {2, "SELL|10"},
	}
	for _, o := range orders {
		cluster.Broadcast(o.desk, pgcs.Value(o.v))
	}
	must(cluster.Run(500 * time.Millisecond))
	pump()
	report(cluster, books)

	fmt.Println("\n== site partition: desks 3,4 lose the quorum ==")
	cluster.Partition(pgcs.NewProcSet(0, 1, 2), pgcs.NewProcSet(3, 4))
	must(cluster.Run(200 * time.Millisecond))
	cluster.Broadcast(1, "BUY|40")    // executes on the quorum side
	cluster.Broadcast(4, "SELL|9999") // minority: queued, NOT executed
	must(cluster.Run(500 * time.Millisecond))
	pump()
	report(cluster, books)
	fmt.Println("  (the minority's big sell did not execute anywhere — no split-brain fills)")

	fmt.Println("\n== sites reconnect: the queued order executes once, everywhere ==")
	cluster.Heal()
	must(cluster.Run(2 * time.Second))
	pump()
	report(cluster, books)

	ref := *books[0]
	for _, p := range cluster.Procs().Members() {
		if *books[p] != ref {
			panic("books diverged — total order violated")
		}
	}
	fmt.Println("\nall five books identical — every site executed the same trades in the same order")
}

func report(c *pgcs.SimCluster, books map[pgcs.ProcID]*book) {
	for _, p := range c.Procs().Members() {
		b := books[p]
		fmt.Printf("  desk %v: %3d matched, resting buy %3d / sell %3d (%d orders seen)\n",
			p, b.trades, b.restingBuy, b.restingSell, len(c.Deliveries(p)))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
