// Command partition walks through the paper's partitionable-membership
// story in slow motion, printing view changes and recovery activity as
// they happen: a seven-node group splits 4/3, both sides keep operating
// (only the quorum side confirms), the sides split further, and finally
// everything merges back — showing how the VStoTO state exchange combines
// the histories of different views into one total order.
//
// Run with: go run ./examples/partition
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	cluster := pgcs.NewSimCluster(pgcs.Config{N: 7, Seed: 42, Delta: time.Millisecond})

	step := func(title string, f func()) {
		fmt.Printf("\n== %s ==\n", title)
		f()
		showViews(cluster)
	}

	step("initial group of seven", func() {
		cluster.Broadcast(0, "boot")
		must(cluster.Run(300 * time.Millisecond))
	})

	step("split 4 | 3 — the side {0,1,2,3} holds a quorum", func() {
		cluster.Partition(pgcs.NewProcSet(0, 1, 2, 3), pgcs.NewProcSet(4, 5, 6))
		must(cluster.Run(300 * time.Millisecond))
		cluster.Broadcast(0, "ordered-by-quorum-side")
		cluster.Broadcast(5, "submitted-on-minority-side")
		must(cluster.Run(500 * time.Millisecond))
		fmt.Printf("  quorum side delivered %d values; minority delivered %d\n",
			len(cluster.Deliveries(0)), len(cluster.Deliveries(5)))
	})

	step("minority splits again: {4} | {5,6} — no quorum anywhere on that side", func() {
		cluster.Partition(pgcs.NewProcSet(0, 1, 2, 3), pgcs.NewProcSet(4), pgcs.NewProcSet(5, 6))
		must(cluster.Run(400 * time.Millisecond))
	})

	step("full merge — state exchange reconciles every history", func() {
		cluster.Heal()
		must(cluster.Run(3 * time.Second))
		for _, p := range cluster.Procs().Members() {
			fmt.Printf("  %v delivered:", p)
			for _, d := range cluster.Deliveries(p) {
				fmt.Printf(" %q", string(d.Value))
			}
			fmt.Println()
		}
	})

	fmt.Println("\nEvery node holds the identical total order, including the value")
	fmt.Println("submitted on the minority side during the partition.")
}

func showViews(c *pgcs.SimCluster) {
	fmt.Println("  views:")
	for _, p := range c.Procs().Members() {
		v, ok := c.CurrentView(p)
		if !ok {
			fmt.Printf("    %v: ⊥\n", p)
			continue
		}
		primary := ""
		if 2*v.Set.Size() > c.Procs().Size() {
			primary = "  (primary)"
		}
		fmt.Printf("    %v: %v%s\n", p, v, primary)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
