package pgcs_test

import (
	"fmt"
	"testing"
	"time"

	"repro"
)

func TestSimClusterEndToEnd(t *testing.T) {
	c := pgcs.NewSimCluster(pgcs.Config{N: 4, Seed: 1, Delta: time.Millisecond})
	c.Broadcast(0, "one")
	c.Broadcast(3, "two")
	if err := c.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ref := c.Deliveries(0)
	if len(ref) != 2 {
		t.Fatalf("node 0 delivered %d values", len(ref))
	}
	for _, p := range c.Procs().Members() {
		ds := c.Deliveries(p)
		if len(ds) != 2 {
			t.Fatalf("%v delivered %d", p, len(ds))
		}
		for i := range ds {
			if ds[i].Value != ref[i].Value {
				t.Fatalf("%v diverges", p)
			}
		}
	}
	v, ok := c.CurrentView(0)
	if !ok || !v.Set.Equal(c.Procs()) {
		t.Errorf("view = %v %t", v, ok)
	}
	if c.Now() == 0 {
		t.Error("virtual clock did not advance")
	}
	if c.EventLog().Len() == 0 {
		t.Error("event log empty")
	}
	if c.Stack() == nil {
		t.Error("Stack() nil")
	}
}

func TestPartitionHealViaFacade(t *testing.T) {
	c := pgcs.NewSimCluster(pgcs.Config{N: 5, Seed: 2, Delta: time.Millisecond})
	c.Partition(pgcs.NewProcSet(0, 1, 2), pgcs.NewProcSet(3, 4))
	if err := c.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.Broadcast(4, "minority")
	if err := c.Run(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(c.Deliveries(4)) != 0 {
		t.Fatal("minority delivered without quorum")
	}
	c.Heal()
	if err := c.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Procs().Members() {
		if len(c.Deliveries(p)) != 1 {
			t.Fatalf("%v delivered %d after heal", p, len(c.Deliveries(p)))
		}
	}
}

func TestCustomQuorums(t *testing.T) {
	// Majorities(7) over a 3-node cluster: no attainable view can hold 4
	// of 7, so no view is ever primary and nothing is delivered.
	c := pgcs.NewSimCluster(pgcs.Config{N: 3, Seed: 3, Delta: time.Millisecond, Quorums: pgcs.Majorities(7)})
	c.Broadcast(0, "never")
	if err := c.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(c.Deliveries(0)) != 0 {
		t.Fatal("delivered without a primary view")
	}
}

func TestInitialMembers(t *testing.T) {
	c := pgcs.NewSimCluster(pgcs.Config{N: 3, Seed: 4, Delta: time.Millisecond, InitialMembers: 2})
	if _, ok := c.CurrentView(2); ok {
		t.Fatal("outsider starts with a view")
	}
	// The outsider is pulled in by probing.
	if err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	v, ok := c.CurrentView(2)
	if !ok || !v.Set.Contains(2) {
		t.Fatalf("outsider never joined: %v %t", v, ok)
	}
}

func TestReplicatedMemoryFacade(t *testing.T) {
	c := pgcs.NewSimCluster(pgcs.Config{N: 3, Seed: 5, Delta: time.Millisecond})
	mem := c.Memory()
	applied := false
	mem.Write(0, "k", "v", func() { applied = true })
	if err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Procs().Members() {
		if got := mem.Read(p, "k"); got != "v" {
			t.Errorf("%v reads %q", p, got)
		}
	}
	if !applied {
		t.Fatal("write not applied (ack fires when deliveries are pumped)")
	}
	var atomicVal string
	mem.ReadAtomic(1, "k", func(v string) { atomicVal = v })
	if err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	mem.Read(0, "") // pump
	if atomicVal != "v" {
		t.Errorf("atomic read = %q", atomicVal)
	}
	if err := mem.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestDeterminismOfFacadeRuns(t *testing.T) {
	run := func() string {
		c := pgcs.NewSimCluster(pgcs.Config{N: 4, Seed: 77, Delta: time.Millisecond})
		for i := 0; i < 5; i++ {
			c.Broadcast(pgcs.ProcID(i%4), pgcs.Value(fmt.Sprintf("v%d", i)))
		}
		c.Partition(pgcs.NewProcSet(0, 1), pgcs.NewProcSet(2, 3))
		if err := c.Run(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		c.Heal()
		if err := c.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, d := range c.Deliveries(0) {
			out += string(d.Value) + ";"
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different outcomes:\n%s\n%s", a, b)
	}
}

func TestLiveClusterFacade(t *testing.T) {
	live := pgcs.StartLiveCluster(pgcs.LiveOptions{
		Config: pgcs.Config{N: 3, Seed: 6, Delta: time.Millisecond},
		Speed:  2000,
	})
	defer live.Stop()
	sub := live.Subscribe()
	live.Bcast(0, "live")
	deadline := time.After(10 * time.Second)
	for {
		select {
		case d := <-sub:
			if d.Value == "live" {
				return
			}
		case <-deadline:
			t.Fatal("live delivery never arrived")
		}
	}
}
